// Package optim implements the optimizer stack the paper builds and
// compares (§4.6, Table 3): a naive per-element Adam standing in for
// PyTorch's native CPU optimizer, a blocked-parallel CPU-Adam mirroring
// DeepSpeed's x86 design, and GraceAdam — the paper's ARM-tuned kernel —
// reproduced with the same optimization hierarchy in Go (cache-sized
// tiles, per-core parallelism, register-resident unrolled inner loops,
// fused bias correction). It also provides the global-norm clipping,
// NaN/Inf scanning, and exact rollback primitives the
// speculation-then-validation scheme requires (§4.4).
package optim

import (
	"math"
	"runtime"
	"sync"
)

// Config is the Adam hyperparameter set.
type Config struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64 // decoupled (AdamW-style)
}

// DefaultConfig matches the common GPT pre-training recipe.
func DefaultConfig() Config {
	return Config{LR: 1e-3, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// State holds the two Adam moments for one contiguous parameter shard plus
// the shared step counter. Moments live in fp32, like the paper's
// CPU-resident optimizer states.
type State struct {
	M, V []float32
	Step int
}

// NewState allocates zeroed moments for n parameters.
func NewState(n int) *State {
	return &State{M: make([]float32, n), V: make([]float32, n)}
}

// Impl is a fused Adam step kernel: updates params p in place from grads g
// using state s at step t (1-based, already incremented by the caller).
type Impl func(cfg Config, p, g []float32, s *State, t int)

// biasCorr precomputes the step-dependent scalars shared by all kernels.
func biasCorr(cfg Config, t int) (stepSize, bc2sqrt float64) {
	bc1 := 1 - math.Pow(cfg.Beta1, float64(t))
	bc2 := 1 - math.Pow(cfg.Beta2, float64(t))
	return cfg.LR / bc1, math.Sqrt(bc2)
}

// NaiveAdam mirrors an unfused framework-native CPU optimizer: five
// separate passes over memory (m update, v update, bias-corrected
// denominator, parameter update, weight decay), single-threaded, with a
// temporary allocation per step. This is the "PT-CPU" row of Table 3.
func NaiveAdam(cfg Config, p, g []float32, s *State, t int) {
	n := len(p)
	b1, b2 := float32(cfg.Beta1), float32(cfg.Beta2)
	for i := 0; i < n; i++ { // pass 1: momentum
		s.M[i] = b1*s.M[i] + (1-b1)*g[i]
	}
	for i := 0; i < n; i++ { // pass 2: variance
		s.V[i] = b2*s.V[i] + (1-b2)*g[i]*g[i]
	}
	denom := make([]float32, n) // pass 3: denominator (temp alloc)
	_, bc2s := biasCorr(cfg, t)
	for i := 0; i < n; i++ {
		denom[i] = float32(math.Sqrt(float64(s.V[i]))/bc2s) + float32(cfg.Eps)
	}
	stepSize, _ := biasCorr(cfg, t)
	for i := 0; i < n; i++ { // pass 4: parameter update
		p[i] -= float32(stepSize) * s.M[i] / denom[i]
	}
	if cfg.WeightDecay != 0 { // pass 5: decoupled decay
		wd := float32(cfg.LR * cfg.WeightDecay)
		for i := 0; i < n; i++ {
			p[i] -= wd * p[i]
		}
	}
}

// tileSize is the per-core working-set tile: small enough to stay resident
// in L1/L2 while the fused kernel makes its single pass (§4.6 "tiled
// processing approach divides parameter updates into cache-friendly
// chunks").
const tileSize = 4096

// CPUAdam is the DeepSpeed-style blocked kernel: fused single pass, tiled,
// parallel across cores — but its inner loop is the x86 SIMD algorithm
// translated element-by-element, which on a non-AVX target runs scalar
// with per-element double-precision upconversion (the "CPU-Adam" row of
// Table 3: good, but leaves throughput behind).
func CPUAdam(cfg Config, p, g []float32, s *State, t int) {
	stepSize, bc2s := biasCorr(cfg, t)
	wd := cfg.LR * cfg.WeightDecay
	parallelTiles(len(p), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// Scalar fallback of the AVX kernel: everything in
			// float64, like _mm256 lanes emulated one at a time.
			m := cfg.Beta1*float64(s.M[i]) + (1-cfg.Beta1)*float64(g[i])
			v := cfg.Beta2*float64(s.V[i]) + (1-cfg.Beta2)*float64(g[i])*float64(g[i])
			s.M[i] = float32(m)
			s.V[i] = float32(v)
			den := math.Sqrt(v)/bc2s + cfg.Eps
			up := stepSize * m / den
			x := float64(p[i]) - up
			if wd != 0 {
				x -= wd * float64(p[i])
			}
			p[i] = float32(x)
		}
	})
}

// GraceAdam is the paper's optimized kernel reproduced in Go: one fused
// pass, cache tiles, core-level parallelism, and a 4-way unrolled inner
// loop whose accumulators stay in registers — the portable analogue of the
// SVE svmla/svsqrt vector pipeline. All arithmetic stays in fp32.
func GraceAdam(cfg Config, p, g []float32, s *State, t int) {
	stepSize64, bc2s := biasCorr(cfg, t)
	b1 := float32(cfg.Beta1)
	ob1 := float32(1 - cfg.Beta1)
	b2 := float32(cfg.Beta2)
	ob2 := float32(1 - cfg.Beta2)
	stepSize := float32(stepSize64)
	invBc2s := float32(1 / bc2s)
	eps := float32(cfg.Eps)
	wd := float32(cfg.LR * cfg.WeightDecay)

	parallelTiles(len(p), func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			g0, g1, g2, g3 := g[i], g[i+1], g[i+2], g[i+3]
			m0 := b1*s.M[i] + ob1*g0
			m1 := b1*s.M[i+1] + ob1*g1
			m2 := b1*s.M[i+2] + ob1*g2
			m3 := b1*s.M[i+3] + ob1*g3
			v0 := b2*s.V[i] + ob2*g0*g0
			v1 := b2*s.V[i+1] + ob2*g1*g1
			v2 := b2*s.V[i+2] + ob2*g2*g2
			v3 := b2*s.V[i+3] + ob2*g3*g3
			s.M[i], s.M[i+1], s.M[i+2], s.M[i+3] = m0, m1, m2, m3
			s.V[i], s.V[i+1], s.V[i+2], s.V[i+3] = v0, v1, v2, v3
			p[i] -= stepSize*m0/(sqrt32(v0)*invBc2s+eps) + wd*p[i]
			p[i+1] -= stepSize*m1/(sqrt32(v1)*invBc2s+eps) + wd*p[i+1]
			p[i+2] -= stepSize*m2/(sqrt32(v2)*invBc2s+eps) + wd*p[i+2]
			p[i+3] -= stepSize*m3/(sqrt32(v3)*invBc2s+eps) + wd*p[i+3]
		}
		for ; i < hi; i++ {
			gg := g[i]
			m := b1*s.M[i] + ob1*gg
			v := b2*s.V[i] + ob2*gg*gg
			s.M[i], s.V[i] = m, v
			p[i] -= stepSize*m/(sqrt32(v)*invBc2s+eps) + wd*p[i]
		}
	})
}

func sqrt32(x float32) float32 { return float32(math.Sqrt(float64(x))) }

// parallelTiles splits [0,n) into tileSize chunks distributed over
// GOMAXPROCS workers. Tiles are 4-aligned so the unrolled kernels keep
// their fast path.
func parallelTiles(n int, f func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if n < tileSize || workers == 1 {
		f(0, n)
		return
	}
	chunk := (n/workers + 3) &^ 3
	if chunk < tileSize {
		chunk = tileSize
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ImplByName resolves a kernel by its Table 3 label.
func ImplByName(name string) (Impl, bool) {
	switch name {
	case "PT-CPU", "naive":
		return NaiveAdam, true
	case "CPU-Adam", "cpu":
		return CPUAdam, true
	case "GraceAdam", "grace":
		return GraceAdam, true
	}
	return nil, false
}
