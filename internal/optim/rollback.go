package optim

import "superoffload/internal/fp16"

// Rollback support for speculation-then-validation (§4.4). The CPU applies
// optimizer steps speculatively per bucket while gradients are still
// arriving; if validation later detects NaN/Inf (skip the whole step) or a
// gradient-clipping violation (re-execute with scaled gradients), the
// already-applied updates must be undone exactly.
//
// Two mechanisms are provided:
//
//   - Snapshot/Restore: bit-exact, costs one bucket's worth of state copies
//     (the state is only held until validation finishes, so peak overhead
//     is a single bucket — the paper's "in-place rollback" keeps the same
//     bound by reconstructing instead of copying).
//
//   - AlgebraicRollback: reconstructs the pre-step state by inverting the
//     Adam recurrences using the retained gradients. Exact in real
//     arithmetic; in fp32 it reconstructs to ~1e-6 relative error, which
//     the tests bound. It needs no snapshot memory at all.

// Snapshot is a bit-exact copy of one shard's state before a speculative
// step.
type Snapshot struct {
	Master []float32
	M, V   []float32
	Step   int
}

// TakeSnapshot captures the shard state (reusing prev's buffers when
// shapes match, so steady-state snapshots allocate nothing).
func TakeSnapshot(prev *Snapshot, sh *MixedShard) *Snapshot {
	n := len(sh.Master)
	s := prev
	if s == nil || len(s.Master) != n {
		s = &Snapshot{Master: make([]float32, n), M: make([]float32, n), V: make([]float32, n)}
	}
	copy(s.Master, sh.Master)
	copy(s.M, sh.State.M)
	copy(s.V, sh.State.V)
	s.Step = sh.State.Step
	return s
}

// Restore rewinds the shard to the snapshot and refreshes the fp16 copy.
func (s *Snapshot) Restore(sh *MixedShard) {
	copy(sh.Master, s.Master)
	copy(sh.State.M, s.M)
	copy(sh.State.V, s.V)
	sh.State.Step = s.Step
	sh.Half = fp16.Cast(sh.Half, sh.Master)
}

// AlgebraicRollback undoes one GraceAdam/CPUAdam step in place given the
// gradients that produced it. Inverts, in order:
//
//	p_old = (p_new + stepSize·m̂/(√v̂+eps)) / (1 − lr·wd)
//	m_old = (m_new − (1−β1)·g) / β1
//	v_old = (v_new − (1−β2)·g²) / β2
//
// and decrements the step counter. The fp16 working copy is re-cast.
func AlgebraicRollback(cfg Config, sh *MixedShard, grad []float32) {
	t := sh.State.Step
	stepSize64, bc2s := biasCorr(cfg, t)
	stepSize := float32(stepSize64)
	invBc2s := float32(1 / bc2s)
	eps := float32(cfg.Eps)
	b1 := float32(cfg.Beta1)
	ob1 := float32(1 - cfg.Beta1)
	b2 := float32(cfg.Beta2)
	ob2 := float32(1 - cfg.Beta2)
	wdFactor := float32(1 - cfg.LR*cfg.WeightDecay)

	p, m, v := sh.Master, sh.State.M, sh.State.V
	for i := range p {
		g := grad[i]
		// Current (post-step) moments are exactly what the update
		// used, so the parameter inversion can reuse them directly.
		mi, vi := m[i], v[i]
		update := stepSize * mi / (sqrt32(vi)*invBc2s + eps)
		pOld := p[i] + update
		if wdFactor != 1 {
			pOld = (p[i] + update) / wdFactor
		}
		p[i] = pOld
		m[i] = (mi - ob1*g) / b1
		v[i] = (vi - ob2*g*g) / b2
	}
	sh.State.Step = t - 1
	sh.Half = fp16.Cast(sh.Half, sh.Master)
}

// ReExecuteClipped rolls the shard back (bit-exactly via the snapshot) and
// re-applies the step with gradients scaled by clipScale — the second
// rollback scenario of §4.4.
func ReExecuteClipped(cfg Config, impl Impl, sh *MixedShard, snap *Snapshot, grad []float32, clipScale float64) {
	snap.Restore(sh)
	scaled := make([]float32, len(grad))
	s := float32(clipScale)
	for i, g := range grad {
		scaled[i] = g * s
	}
	sh.Step(cfg, impl, scaled)
}
