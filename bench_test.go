// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating the experiment each iteration), plus real
// kernel microbenchmarks (Table 3's Adam implementations, fp16 casting,
// matmul) and ablation benches for the design choices DESIGN.md calls out
// (bucket size, GPU-retained buckets, casting path, STV vs STE).
//
// Run: go test -bench=. -benchmem
package superoffload

import (
	"fmt"
	"testing"

	"superoffload/internal/act"
	"superoffload/internal/core"
	"superoffload/internal/data"
	"superoffload/internal/dp"
	"superoffload/internal/experiments"
	"superoffload/internal/fp16"
	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/obs"
	"superoffload/internal/optim"
	"superoffload/internal/place"
	"superoffload/internal/sched"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// benchExperiment regenerates one table/figure per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		out, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty output")
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig3(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig6(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11a(b *testing.B) { benchExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B) { benchExperiment(b, "fig11b") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }

// BenchmarkFig14 runs the real STV training slice and the 80k-iteration
// envelope replay (shortened per iteration to keep bench time sane).
func BenchmarkFig14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14Real(40)
		if !r.ExactSTE {
			b.Fatal("exactness broken")
		}
		env := experiments.Fig14Envelope(20000)
		if env.WarmupRolls == 0 {
			b.Fatal("no warm-up rollbacks")
		}
	}
}

// ---- Table 3: real Adam kernels (measured, b.SetBytes reports GB/s) ----

func benchAdam(b *testing.B, impl optim.Impl) {
	const n = 4 << 20
	rng := tensor.NewRNG(5)
	p := make([]float32, n)
	g := make([]float32, n)
	for i := range p {
		p[i] = rng.NormFloat32()
		g[i] = rng.NormFloat32() * 0.1
	}
	s := optim.NewState(n)
	cfg := optim.DefaultConfig()
	b.SetBytes(int64(n) * 16) // p, g, m, v fp32 traffic per step
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		impl(cfg, p, g, s, i+1)
	}
}

func BenchmarkTable3_PTCPU(b *testing.B)     { benchAdam(b, optim.NaiveAdam) }
func BenchmarkTable3_CPUAdam(b *testing.B)   { benchAdam(b, optim.CPUAdam) }
func BenchmarkTable3_GraceAdam(b *testing.B) { benchAdam(b, optim.GraceAdam) }

// ---- casting kernels (the §4.5 payload producers) ----

func BenchmarkFP16Cast(b *testing.B) {
	const n = 1 << 22
	src := make([]float32, n)
	rng := tensor.NewRNG(9)
	for i := range src {
		src[i] = rng.NormFloat32()
	}
	dst := make([]fp16.Num, n)
	b.SetBytes(n * 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp16.Cast(dst, src)
	}
}

func BenchmarkFP16Uncast(b *testing.B) {
	const n = 1 << 22
	src := make([]fp16.Num, n)
	for i := range src {
		src[i] = fp16.FromFloat32(float32(i % 1000))
	}
	dst := make([]float32, n)
	b.SetBytes(n * 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp16.Uncast(dst, src)
	}
}

func BenchmarkFP16ScanBad(b *testing.B) {
	const n = 1 << 22
	xs := make([]fp16.Num, n)
	b.SetBytes(n * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fp16.ScanBad(xs) {
			b.Fatal("clean slice flagged")
		}
	}
}

// ---- tensor substrate ----

func BenchmarkMatMul256(b *testing.B) {
	rng := tensor.NewRNG(3)
	x := tensor.Randn(rng, 1, 256, 256)
	y := tensor.Randn(rng, 1, 256, 256)
	out := tensor.New(256, 256)
	tensor.MatMulInto(out, x, y) // warm-up: fault in pages, start the pool
	b.SetBytes(3 * 256 * 256 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, x, y)
	}
}

// ---- real STV vs STE training step ----

func benchTrainer(b *testing.B, mode stv.Mode) {
	cfg := model.Config{Name: "bench", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	m := nn.NewGPT(cfg, 16, tensor.NewRNG(1))
	a := optim.DefaultConfig()
	tr := stv.NewTrainer(m, stv.Config{Adam: a, Impl: optim.GraceAdam, ClipNorm: 10, BucketElems: 100000, Mode: mode})
	corpus := data.NewCorpus(128, 2)
	batch := corpus.NextBatch(2, 16)
	// One warm-up step so 1x CI runs measure a steady-state step (arena
	// grown, snapshots and fp16 buffers in place), not first-step setup.
	if _, err := tr.Step(batch); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkTrainStepSTV(b *testing.B) { benchTrainer(b, stv.STV) }
func BenchmarkTrainStepSTE(b *testing.B) { benchTrainer(b, stv.STE) }

// BenchmarkTrainStepPlacement is the STV step with a heterogeneous
// placement plan (a 2-bucket GPU-retained tail over a CPU body): the
// per-step cost of the virtual-clock superchip executor rides the
// training loop, so a regression here means placement modeling leaked
// onto the real step's critical path.
func BenchmarkTrainStepPlacement(b *testing.B) {
	cfg := model.Config{Name: "bench", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	m := nn.NewGPT(cfg, 16, tensor.NewRNG(1))
	nb := len(stv.PartitionGroups(m.Params(), 20000))
	plan := place.GPUTail(nb, 2)
	a := optim.DefaultConfig()
	tr := stv.NewTrainer(m, stv.Config{
		Adam: a, Impl: optim.GraceAdam, ClipNorm: 10,
		BucketElems: 20000, Mode: stv.STV, Placement: &plan,
	})
	defer tr.Close()
	corpus := data.NewCorpus(128, 2)
	batch := corpus.NextBatch(2, 16)
	if _, err := tr.Step(batch); err != nil { // warm-up (see benchTrainer)
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
	if tel, ok := tr.PlacementTelemetry(); !ok || tel.Steps != b.N+1 {
		b.Fatal("placement telemetry missing or short")
	}
}

// BenchmarkTrainStepSTVNVMe is the STV step with optimizer state behind
// the file-backed NVMe store (2-bucket window, real file IO on the bench
// host; the hw.NVMeSpec throttle is virtual and costs nothing here).
func BenchmarkTrainStepSTVNVMe(b *testing.B) {
	cfg := model.Config{Name: "bench", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	m := nn.NewGPT(cfg, 16, tensor.NewRNG(1))
	store, err := stv.NewNVMeStore(stv.NVMeStoreConfig{Dir: b.TempDir(), ResidentBuckets: 2})
	if err != nil {
		b.Fatal(err)
	}
	a := optim.DefaultConfig()
	tr := stv.NewTrainer(m, stv.Config{
		Adam: a, Impl: optim.GraceAdam, ClipNorm: 10,
		BucketElems: 20000, Mode: stv.STV, Store: store,
	})
	defer tr.Close()
	corpus := data.NewCorpus(128, 2)
	batch := corpus.NextBatch(2, 16)
	if _, err := tr.Step(batch); err != nil { // warm-up (see benchTrainer)
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTrainStepMLP is the STV step with optimizer state behind the
// multi-path store: records striped over 2 path workers with a DRAM
// cache tier in front. Unlike the single-lane NVMe bench, the cache
// absorbs the steady-state reads (every fetch is a DRAM hit once the
// cache warms), so the measured step is dominated by the encode/evict
// and worker-dispatch paths rather than bench-host disk variance — which
// is why this one IS in the gated baseline. A regression here means the
// striping or cache bookkeeping leaked onto the step's critical path.
func BenchmarkTrainStepMLP(b *testing.B) {
	cfg := model.Config{Name: "bench", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	m := nn.NewGPT(cfg, 16, tensor.NewRNG(1))
	store, err := stv.NewMLPStore(stv.MLPStoreConfig{
		Dir:             b.TempDir(),
		Paths:           hw.NodeIOPaths(2),
		ResidentBuckets: 2,
		CacheBuckets:    32,
	})
	if err != nil {
		b.Fatal(err)
	}
	a := optim.DefaultConfig()
	tr := stv.NewTrainer(m, stv.Config{
		Adam: a, Impl: optim.GraceAdam, ClipNorm: 10,
		BucketElems: 20000, Mode: stv.STV, Store: store,
	})
	defer tr.Close()
	corpus := data.NewCorpus(128, 2)
	batch := corpus.NextBatch(2, 16)
	if _, err := tr.Step(batch); err != nil { // warm-up (see benchTrainer)
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
	tel := store.Telemetry()
	if len(tel.Events) != 0 {
		b.Fatalf("degradation events on a healthy bench run: %+v", tel.Events)
	}
	if tel.CacheHits == 0 {
		b.Fatal("cache tier never hit; the bench is measuring disk, not the store")
	}
}

// BenchmarkTrainStepAct is the STV step with activations spilled behind
// a 2-layer write-behind window into the DRAM cache tier (the nvme tier
// adds real file IO, which is bench-host noise — the DRAM tier exercises
// the same stash/spill/prefetch path with a pure host copy). A 5-layer
// model makes 3 layers spill per pass; a regression here means the
// activation tap leaked onto the forward/backward critical path.
func BenchmarkTrainStepAct(b *testing.B) {
	cfg := model.Config{Name: "bench", Layers: 5, Hidden: 64, Heads: 4, Vocab: 128}
	m := nn.NewGPT(cfg, 16, tensor.NewRNG(1))
	store, err := act.NewStore(act.Config{
		Tier: act.DRAM, ResidentLayers: 2,
		Hidden: cfg.Hidden, Params: int64(m.NumParams()),
	})
	if err != nil {
		b.Fatal(err)
	}
	a := optim.DefaultConfig()
	tr := stv.NewTrainer(m, stv.Config{
		Adam: a, Impl: optim.GraceAdam, ClipNorm: 10,
		BucketElems: 100000, Mode: stv.STV, Act: store,
	})
	defer tr.Close()
	corpus := data.NewCorpus(128, 2)
	batch := corpus.NextBatch(2, 16)
	if _, err := tr.Step(batch); err != nil { // warm-up (see benchTrainer)
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := tr.Flush(); err != nil {
		b.Fatal(err)
	}
	if tel, ok := tr.ActTelemetry(); !ok || tel.Spills == 0 {
		b.Fatal("activation telemetry missing or idle")
	}
}

// BenchmarkTrainStepDP is one data-parallel step over 2 simulated ranks
// (channel reduce-scatter + all-gather on the critical path).
func BenchmarkTrainStepDP(b *testing.B) {
	cfg := model.Config{Name: "bench", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	m := nn.NewGPT(cfg, 16, tensor.NewRNG(1))
	eng, err := dp.New(m, dp.Config{
		Ranks: 2, Adam: optim.DefaultConfig(), Impl: optim.GraceAdam,
		ClipNorm: 10, BucketElems: 20000,
	})
	if err != nil {
		b.Fatal(err)
	}
	corpus := data.NewCorpus(128, 2)
	batch := corpus.NextBatch(2, 16)
	if _, err := eng.Step(batch); err != nil { // warm-up (see benchTrainer)
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := eng.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		b.Error(err)
	}
}

// BenchmarkTrainStepTraced is BenchmarkTrainStepDP with a live Tracer
// attached: every schedule op records a span and every store/collective
// site records an instant. Comparing its ns/op against TrainStepDP
// bounds the tracing-on overhead; the tracing-off cost is covered by
// the untraced TrainStep* benches staying inside the benchdiff slack.
func BenchmarkTrainStepTraced(b *testing.B) {
	cfg := model.Config{Name: "bench", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	m := nn.NewGPT(cfg, 16, tensor.NewRNG(1))
	eng, err := dp.New(m, dp.Config{
		Ranks: 2, Adam: optim.DefaultConfig(), Impl: optim.GraceAdam,
		ClipNorm: 10, BucketElems: 20000, Tracer: obs.NewTracer(),
	})
	if err != nil {
		b.Fatal(err)
	}
	corpus := data.NewCorpus(128, 2)
	batch := corpus.NextBatch(2, 16)
	if _, err := eng.Step(batch); err != nil { // warm-up (see benchTrainer)
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := eng.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		b.Error(err)
	}
}

// BenchmarkTrainStepSP is one sequence-parallel (Ulysses) step over 2
// simulated ranks: two attention all-to-alls per layer per pass plus the
// weight-gradient ring on the critical path.
func BenchmarkTrainStepSP(b *testing.B) {
	cfg := model.Config{Name: "bench", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	m := nn.NewGPT(cfg, 16, tensor.NewRNG(1))
	eng, err := dp.NewSP(m, dp.Config{
		Ranks: 2, Adam: optim.DefaultConfig(), Impl: optim.GraceAdam,
		ClipNorm: 10, BucketElems: 20000,
	})
	if err != nil {
		b.Fatal(err)
	}
	corpus := data.NewCorpus(128, 2)
	batch := corpus.NextBatch(2, 16)
	if _, err := eng.Step(batch); err != nil { // warm-up (see benchTrainer)
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := eng.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		b.Error(err)
	}
}

// BenchmarkTrainStepMesh is one hybrid 2×2 mesh step: per-group
// attention all-to-alls and gradient rings plus the cross-group
// bucketized reduce-scatter and the 4-rank all-gather on the critical
// path.
func BenchmarkTrainStepMesh(b *testing.B) {
	cfg := model.Config{Name: "bench", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	m := nn.NewGPT(cfg, 16, tensor.NewRNG(1))
	eng, err := dp.NewMesh(m, dp.Config{
		Ranks: 2, SeqRanks: 2, Adam: optim.DefaultConfig(), Impl: optim.GraceAdam,
		ClipNorm: 10, BucketElems: 20000,
	})
	if err != nil {
		b.Fatal(err)
	}
	corpus := data.NewCorpus(128, 2)
	batch := corpus.NextBatch(2, 16)
	if _, err := eng.Step(batch); err != nil { // warm-up (see benchTrainer)
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Step(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := eng.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		b.Error(err)
	}
}

// BenchmarkTrainStepPipe is one 3-D 1×1×2 pipeline step over 2 micro-
// batches: per-micro boundary activation/gradient sends over the stage
// links, the 1F1B interleave (M=2 puts one warmup forward in flight on
// stage 0), the span-restricted reduce, and the 2-rank all-gather on
// the critical path. One step here is two micro-batches of compute —
// the ns/op baseline is only comparable to itself.
func BenchmarkTrainStepPipe(b *testing.B) {
	cfg := model.Config{Name: "bench", Layers: 2, Hidden: 64, Heads: 4, Vocab: 128}
	m := nn.NewGPT(cfg, 16, tensor.NewRNG(1))
	eng, err := dp.NewPipe(m, dp.Config{
		Ranks: 1, SeqRanks: 1, PipeRanks: 2,
		Adam: optim.DefaultConfig(), Impl: optim.GraceAdam,
		ClipNorm: 10, BucketElems: 20000,
	})
	if err != nil {
		b.Fatal(err)
	}
	corpus := data.NewCorpus(128, 2)
	micros := []data.Batch{corpus.NextBatch(2, 16), corpus.NextBatch(2, 16)}
	if _, err := eng.StepAccum(micros); err != nil { // warm-up (see benchTrainer)
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.StepAccum(micros); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if _, err := eng.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		b.Error(err)
	}
}

// ---- ablation benches (design choices from DESIGN.md §4) ----

// BenchmarkAblationBucketSize sweeps the transfer bucket size on the 5B
// workload; per-iteration simulated throughput is reported as a custom
// metric. The 64 MB knee (Fig. 7) should win.
func BenchmarkAblationBucketSize(b *testing.B) {
	m, _ := model.ByName("5B")
	chip := hw.GH200()
	flops := m.IterFLOPs(8, 1024)
	for _, mb := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("%dMB", mb), func(b *testing.B) {
			bucketBytes := int64(mb) << 20
			nb := m.GradBucketCount(bucketBytes)
			var last float64
			for i := 0; i < b.N; i++ {
				_, st, err := sched.Build(sched.OffloadPlan{
					Chip: chip, Link: chip.Link, Model: m,
					Exec: sched.Execution{MicroBatch: 8, GradAccum: 1}, Seq: 1024,
					NBuckets: nb, BucketParams: m.Params() / int64(nb),
					CastOnGPU: true, Speculative: true, CPUImpl: hw.AdamGrace,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = flops / st.IterTime / 1e12
			}
			b.ReportMetric(last, "simTFLOPS")
		})
	}
}

// BenchmarkAblationGPUBuckets sweeps the number of GPU-retained buckets
// (§4.3 repartitioning grid search).
func BenchmarkAblationGPUBuckets(b *testing.B) {
	m, _ := model.ByName("5B")
	chip := hw.GH200()
	nb := m.GradBucketCount(hw.SuperOffloadBucketBytes)
	flops := m.IterFLOPs(8, 1024)
	for _, n := range []int{0, 4, 16, 40} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				_, st, err := sched.Build(sched.OffloadPlan{
					Chip: chip, Link: chip.Link, Model: m,
					Exec: sched.Execution{MicroBatch: 8, GradAccum: 1}, Seq: 1024,
					NBuckets: nb, BucketParams: m.Params() / int64(nb),
					GPUBuckets: n, CastOnGPU: true, Speculative: true, CPUImpl: hw.AdamGrace,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = flops / st.IterTime / 1e12
			}
			b.ReportMetric(last, "simTFLOPS")
		})
	}
}

// BenchmarkAblationCastPath compares the two §4.5 casting paths end to end
// on the planner's cost model.
func BenchmarkAblationCastPath(b *testing.B) {
	chip := hw.GH200()
	elems := int64(64 << 20)
	for _, path := range []core.CastPath{core.CastGPUMoveFP32, core.CastCPUMoveFP16} {
		b.Run(path.String(), func(b *testing.B) {
			var t float64
			for i := 0; i < b.N; i++ {
				t = core.CastCost(chip, path, elems)
			}
			b.ReportMetric(t*1e3, "modelMs")
		})
	}
}

// BenchmarkAblationNUMABinding quantifies the §4.7 binding effect on the
// 20B 4-chip workload.
func BenchmarkAblationNUMABinding(b *testing.B) {
	m, _ := model.ByName("20B")
	w := sched.Workload{Cluster: hw.ClusterFor(4), Model: m, GlobalBatch: 16, Seq: 1024}
	for _, bound := range []bool{true, false} {
		name := "bound"
		if !bound {
			name = "misbound"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.DefaultOptions()
			opts.NUMABinding = bound
			var last float64
			for i := 0; i < b.N; i++ {
				r := core.NewWith(opts).Plan(w)
				if !r.Fits {
					b.Fatal("20B should fit 4 chips")
				}
				last = r.TFLOPS
			}
			b.ReportMetric(last, "simTFLOPS")
		})
	}
}

// BenchmarkTable3Model regenerates the Grace-scale Table 3 model (no real
// kernel measurement, so it stays fast).
func BenchmarkTable3Model(b *testing.B) {
	chip := hw.GH200()
	for i := 0; i < b.N; i++ {
		for _, p := range experiments.Table3Sizes {
			if hw.AdamStepTime(chip, hw.AdamGrace, p) <= 0 {
				b.Fatal("bad model")
			}
		}
	}
}
