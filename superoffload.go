// Package superoffload is a Go reproduction of "SuperOffload: Unleashing
// the Power of Large-Scale LLM Training on Superchips" (ASPLOS 2026): a
// Superchip-centric offloading system that overlaps CPU optimizer work
// with GPU computation via speculation-then-validation, picks bucket sizes
// and weight residency adaptively, and chooses casting placement for the
// NVLink-C2C link.
//
// The package exposes three layers:
//
//   - A real training engine (Init/Step, mirroring the paper's Fig. 1
//     two-line enablement) that trains an actual GPT on real numerics with
//     speculative per-bucket Adam steps, background validation, and exact
//     rollback — plus its multi-superchip variants: InitDP runs R
//     data-parallel ranks with ZeRO-sharded optimizer state, bucketized
//     gradient reduce-scatter, and post-step weight all-gather, and
//     InitSP runs S sequence-parallel ranks (SuperOffload-Ulysses, §4.7)
//     with per-layer attention all-to-alls and a deterministic
//     weight-gradient ring, and InitMesh composes the two into an R×S
//     mesh (R data-parallel groups of S sequence ranks, the paper's
//     multi-superchip evaluation shape) — all on loss trajectories
//     bit-identical to the single-rank engine.
//
//   - A planner (Plan/Describe) that sizes workloads against modeled
//     GH200 clusters and predicts throughput for SuperOffload and the
//     seven baseline systems.
//
//   - The experiment harness (RunExperiment) that regenerates every table
//     and figure of the paper's evaluation; see EXPERIMENTS.md.
package superoffload

import (
	"fmt"
	"io"

	"superoffload/internal/act"
	"superoffload/internal/core"
	"superoffload/internal/data"
	"superoffload/internal/dp"
	"superoffload/internal/experiments"
	"superoffload/internal/hw"
	"superoffload/internal/model"
	"superoffload/internal/nn"
	"superoffload/internal/optim"
	"superoffload/internal/place"
	"superoffload/internal/sched"
	"superoffload/internal/stv"
	"superoffload/internal/tensor"
)

// ---- real training engine (Fig. 1 facade) ----

// ModelConfig describes a transformer to train for real.
type ModelConfig struct {
	Layers int
	Hidden int
	Heads  int
	Vocab  int
	MaxSeq int
}

// Model is a real GPT with hand-written forward/backward.
type Model struct {
	gpt *nn.GPT
}

// NewModel builds a model with deterministic initialization from seed.
func NewModel(cfg ModelConfig, seed uint64) (*Model, error) {
	if cfg.Layers < 1 || cfg.Hidden < 8 || cfg.Vocab < 2 {
		return nil, fmt.Errorf("superoffload: invalid model config %+v", cfg)
	}
	if cfg.Heads < 1 {
		cfg.Heads = cfg.Hidden / 64
		if cfg.Heads < 1 {
			cfg.Heads = 1
		}
	}
	if cfg.Hidden%cfg.Heads != 0 {
		return nil, fmt.Errorf("superoffload: hidden %d not divisible by heads %d", cfg.Hidden, cfg.Heads)
	}
	if cfg.MaxSeq < 1 {
		cfg.MaxSeq = 128
	}
	mc := model.Config{Name: "user", Layers: cfg.Layers, Hidden: cfg.Hidden, Heads: cfg.Heads, Vocab: cfg.Vocab}
	return &Model{gpt: nn.NewGPT(mc, cfg.MaxSeq, tensor.NewRNG(seed))}, nil
}

// NumParams returns the trainable parameter count.
func (m *Model) NumParams() int { return m.gpt.NumParams() }

// OptimizerConfig is the Adam hyperparameter set plus SuperOffload's
// scheduling knobs.
type OptimizerConfig struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
	// ClipNorm enables global-norm gradient clipping (0 disables).
	ClipNorm float64
	// BucketElems overrides the per-bucket parameter budget (default:
	// 32M elements = one 64 MB fp16 bucket, §4.3).
	BucketElems int
	// Synchronous falls back to the synchronize-then-execute schedule
	// (for comparisons); the default is speculation-then-validation.
	Synchronous bool
	// LossScaling enables dynamic fp16 loss scaling.
	LossScaling bool
	// WarmupSteps/TotalSteps enable the warm-up + cosine-decay learning
	// rate schedule when TotalSteps > 0; MinLRFrac is the decay floor
	// (fraction of LR). Rollback re-execution uses the rolled-back
	// step's own rate, preserving exactness.
	WarmupSteps int
	TotalSteps  int
	MinLRFrac   float64
	// Offload selects the optimizer-state residency tier.
	Offload OffloadConfig
	// Placement selects the heterogeneous bucket placement (the paper's
	// §4.3 adaptive GPU/CPU weight-update split) and enables the
	// virtual-clock superchip executor.
	Placement PlacementConfig
	// Activation selects the activation offloading tier (per-layer
	// forward activations spill behind a write-behind window and prefetch
	// back ahead of backward, SSDTrain-style).
	Activation ActivationConfig
	// Tracer, when non-nil, records per-op schedule spans, store IO
	// events, and collective instants across whichever engine InitX
	// builds (one track per rank, store worker, and comm plane); export
	// with Tracer.WriteJSON or serve live through ObsHandler. Nil — the
	// default — disables tracing at zero cost.
	Tracer *Tracer
}

// ActivationConfig selects the activation offloading tier: per-layer
// forward activations spill out of the replica as the forward pass's
// write-behind window slides past them and prefetch back ahead of the
// backward pass with async double buffering. Spilling is numerically
// invisible — restores are bit-exact — so any configuration trains
// identically to the resident engine; what changes is the modeled HBM
// footprint and the spill/prefetch time on the virtual clocks.
type ActivationConfig struct {
	// Offload is "" (activations stay resident), "dram" (spill into a
	// host-memory cache over the C2C link), or "nvme" (spill into a
	// backing file at modeled flash rates).
	Offload string
	// Dir is the nvme tier's backing directory (default: the system temp
	// directory). Each rank gets its own file.
	Dir string
	// ResidentLayers is the write-behind window W: the W most recent
	// forward layers stay resident, everything older spills. The floor is
	// 2 (the layer being differentiated plus the fetch in flight).
	ResidentLayers int
	// HBMBudgetBytes overrides the modeled per-superchip HBM capacity the
	// facade guards step shapes against (0: the modeled GH200's 96 GiB).
	// A step whose fp16 replica plus resident activation window exceeds
	// the budget is rejected before training touches it — enabling
	// offload shrinks the window from all layers to ResidentLayers, which
	// is what lets overflowing seq×batch shapes train.
	HBMBudgetBytes int64
}

// window returns the effective resident-layer window for a model of the
// given depth: every layer without offload, the floored ResidentLayers
// (≥2, ≤layers) with it.
func (a ActivationConfig) window(layers int) int {
	if a.Offload == "" {
		return layers
	}
	w := a.ResidentLayers
	if w < 2 {
		w = 2
	}
	if w > layers {
		w = layers
	}
	return w
}

// storeFactory translates the activation selection into a per-rank store
// constructor (nil means resident activations, the engines' default).
// The tracer, when non-nil, gives each rank's store its own trace track.
func (a ActivationConfig) storeFactory(m *Model, tracer *Tracer) (func(rank int) (*act.Store, error), error) {
	var tier act.Tier
	switch a.Offload {
	case "":
		return nil, nil
	case "dram":
		tier = act.DRAM
	case "nvme":
		tier = act.NVMe
	default:
		return nil, fmt.Errorf("superoffload: unknown activation offload %q (want dram or nvme)", a.Offload)
	}
	hidden, params := m.gpt.Cfg.Hidden, int64(m.NumParams())
	return func(rank int) (*act.Store, error) {
		return act.NewStore(act.Config{
			Tier: tier, Dir: a.Dir, ResidentLayers: a.ResidentLayers,
			Hidden: hidden, Params: params,
			Tracer: tracer, TrackLabel: fmt.Sprintf("rank %d act", rank),
		})
	}, nil
}

// ActTelemetry is the activation store's traffic and modeled-time
// accounting (spills, fetches, prefetch stalls, pipelined vs serialized
// seconds); see act.Telemetry.
type ActTelemetry = act.Telemetry

// hbmGuard models the per-superchip HBM footprint of a step — the fp16
// replica with its fp16 gradients (4 bytes/param) plus the resident
// activation window — and rejects shapes that overflow the modeled
// budget before any rank touches them. Activation offloading shrinks the
// window from every layer to ActivationConfig.ResidentLayers, which is
// exactly what lets long-sequence shapes clear the guard.
type hbmGuard struct {
	budget           int64
	params           int64
	hidden, heads    int
	resident         int
	rowsDiv, seqDiv  int
	offloadAvailable bool // false when Activation.Offload is already on
}

// newHBMGuard builds the guard for an engine whose ranks each hold
// rows/rowsDiv × seq/seqDiv tokens of the batch.
func (cfg OptimizerConfig) newHBMGuard(m *Model, rowsDiv, seqDiv int) *hbmGuard {
	budget := cfg.Activation.HBMBudgetBytes
	if budget <= 0 {
		budget = hw.DefaultSuperchip().Chip.GPU.MemBytes
	}
	return &hbmGuard{
		budget: budget, params: int64(m.NumParams()),
		hidden: m.gpt.Cfg.Hidden, heads: m.gpt.Cfg.Heads,
		resident: cfg.Activation.window(m.gpt.Cfg.Layers),
		rowsDiv:  rowsDiv, seqDiv: seqDiv,
		offloadAvailable: cfg.Activation.Offload == "",
	}
}

// check validates one batch's shape against the modeled budget.
func (g *hbmGuard) check(b Batch) error {
	tokens := (b.BatchSize / max(g.rowsDiv, 1)) * (b.Seq / max(g.seqDiv, 1))
	need := 4*g.params + int64(g.resident)*hw.ActLayerBytes(tokens, g.hidden, g.heads, b.Seq)
	if need <= g.budget {
		return nil
	}
	hint := "shrink the batch or sequence"
	if g.offloadAvailable {
		hint = "enable activation offloading (Activation.Offload / -act-offload) or shrink the batch"
	}
	return fmt.Errorf("superoffload: step shape %d×%d needs ~%d MiB of modeled HBM (%d resident layers) against a %d MiB budget; %s",
		b.BatchSize, b.Seq, need>>20, g.resident, g.budget>>20, hint)
}

// checkAll validates every accumulated micro-batch (each is a full
// forward/backward, so each must fit on its own).
func (g *hbmGuard) checkAll(batches []Batch) error {
	for _, b := range batches {
		if err := g.check(b); err != nil {
			return err
		}
	}
	return nil
}

// OffloadConfig selects where the fp32 master weights and Adam moments
// live between bucket touches (the third memory tier of the documented
// ext-nvme extension, on the real engine).
type OffloadConfig struct {
	// Backend is "dram" (or empty: everything stays host-resident) or
	// "nvme" (bucket state spills to a backing file with a small
	// resident window, throttled by the modeled NVMe array).
	Backend string
	// Dir is the directory for nvme backing files (default: the system
	// temp directory). Each rank gets its own file.
	Dir string
	// ResidentBuckets caps the nvme store's resident window (default 2:
	// the bucket being stepped plus the one being prefetched).
	ResidentBuckets int
	// IOPaths splits the modeled NVMe array into this many independently
	// scheduled flash paths (MLP-Offload's multi-path layer): bucket
	// records stripe across per-path backing files with one IO worker
	// each, and a failed path quarantines while its records re-route to
	// survivors. Values <= 1 keep the single-lane store.
	IOPaths int
	// CacheBuckets caps the DRAM cache tier the multi-path store keeps
	// in front of flash (0 disables the cache tier). Setting it selects
	// the multi-path store even with IOPaths <= 1.
	CacheBuckets int
}

// nvmeConfig translates the offload knobs into the windowed store's
// configuration (shared by the homogeneous and placement-routed paths).
func (o OffloadConfig) nvmeConfig(tracer *Tracer, label string) stv.NVMeStoreConfig {
	return stv.NVMeStoreConfig{
		Dir: o.Dir, ResidentBuckets: o.ResidentBuckets,
		Tracer: tracer, TrackLabel: label,
	}
}

// multipath reports whether the nvme backend should build the
// multi-path store instead of the single-lane one.
func (o OffloadConfig) multipath() bool { return o.IOPaths > 1 || o.CacheBuckets > 0 }

// mlpConfig translates the offload knobs into the multi-path store's
// configuration.
func (o OffloadConfig) mlpConfig(tracer *Tracer, label string) stv.MLPStoreConfig {
	n := o.IOPaths
	if n < 1 {
		n = 1
	}
	return stv.MLPStoreConfig{
		Dir:             o.Dir,
		Paths:           hw.NodeIOPaths(n),
		ResidentBuckets: o.ResidentBuckets,
		CacheBuckets:    o.CacheBuckets,
		Tracer:          tracer,
		TrackLabel:      label,
	}
}

// newFlashStore builds the flash-tier store the nvme backend selected:
// multi-path when any MLP knob is set, else the single-lane store. The
// label names the store's trace track(s) when the tracer is on.
func (o OffloadConfig) newFlashStore(tracer *Tracer, label string) (stv.BucketStore, error) {
	if o.multipath() {
		return stv.NewMLPStore(o.mlpConfig(tracer, label))
	}
	return stv.NewNVMeStore(o.nvmeConfig(tracer, label))
}

// storeFactory translates the offload selection into a per-rank bucket
// store constructor (nil means DRAM-resident, the engines' default).
// The tracer, when non-nil, gives each rank's store its own trace track.
func (o OffloadConfig) storeFactory(tracer *Tracer) (func(rank int) (stv.BucketStore, error), error) {
	switch o.Backend {
	case "", "dram":
		return nil, nil
	case "nvme":
		return func(rank int) (stv.BucketStore, error) {
			return o.newFlashStore(tracer, fmt.Sprintf("rank %d nvme", rank))
		}, nil
	}
	return nil, fmt.Errorf("superoffload: unknown offload backend %q (want dram or nvme)", o.Backend)
}

// placementPlan translates the placement selection into a per-bucket tier
// plan over the model's bucket partition (nil when Mode is empty). With
// the nvme offload backend, the offloaded body additionally spills
// through the windowed flash store (CPUAdam tiers become NVMeWindow).
func (cfg OptimizerConfig) placementPlan(m *Model) (*place.Plan, error) {
	pc := cfg.Placement
	if pc.Mode == "" {
		return nil, nil
	}
	be := cfg.BucketElems
	if be <= 0 {
		be = stv.DefaultBucketElems
	}
	groups := stv.PartitionGroups(m.gpt.Params(), be)
	elems := make([]int, len(groups))
	for i, g := range groups {
		elems[i] = g.TotalSize()
	}
	nb := len(elems)
	var plan place.Plan
	switch pc.Mode {
	case "cpu":
		plan = place.Uniform(nb, place.CPUAdam)
	case "gpu":
		plan = place.Uniform(nb, place.GPUResident)
	case "auto":
		if pc.GPUBuckets > 0 {
			plan = place.GPUTail(nb, pc.GPUBuckets)
		} else {
			batch, seq := pc.Batch, pc.Seq
			if batch < 1 {
				batch = 1
			}
			if seq < 1 {
				seq = m.gpt.MaxSeq
			}
			shape := place.Shape{
				Tokens: batch * seq, Hidden: m.gpt.Cfg.Hidden, Seq: seq,
				Params: int64(m.NumParams()),
			}
			if cfg.Activation.Offload != "" {
				// Co-plan optimizer and activation placement under one
				// HBM budget: the resident activation window claims its
				// bytes first, shrinking the GPU-retained bucket tail.
				shape.Act = place.ActShape{
					Layers:   m.gpt.Cfg.Layers,
					Resident: cfg.Activation.window(m.gpt.Cfg.Layers),
					Heads:    m.gpt.Cfg.Heads,
					NVMe:     cfg.Activation.Offload == "nvme",
				}
			}
			spec := hw.DefaultSuperchip()
			if cfg.Offload.Backend == "nvme" && cfg.Offload.IOPaths > 1 {
				// Multi-path flash: the auto search times NVMe-tier
				// buckets under the per-path clock model, so path count
				// influences the GPU/CPU/flash split it picks.
				spec.IOPaths = hw.NodeIOPaths(cfg.Offload.IOPaths)
			}
			plan = place.Auto(spec, elems, shape, 0)
		}
	default:
		return nil, fmt.Errorf("superoffload: unknown placement mode %q (want auto, cpu, or gpu)", pc.Mode)
	}
	if cfg.Offload.Backend == "nvme" {
		plan = plan.WithNVMeBody()
	}
	return &plan, nil
}

// trainSetup resolves the optimizer config's placement plan, bucket
// store factory, and activation store factory for the model — one place
// shared by every InitX, so the engines can never diverge on
// placement/offload wiring. Without a placement the legacy offload path
// applies unchanged; with one, the GPU/CPU tiers stay resident and only
// an nvme backend's body buckets spill (through a per-rank PlacedStore).
func (cfg OptimizerConfig) trainSetup(m *Model) (*place.Plan, func(rank int) (stv.BucketStore, error), func(rank int) (*act.Store, error), error) {
	actFactory, err := cfg.Activation.storeFactory(m, cfg.Tracer)
	if err != nil {
		return nil, nil, nil, err
	}
	plan, err := cfg.placementPlan(m)
	if err != nil {
		return nil, nil, nil, err
	}
	if plan == nil {
		factory, err := cfg.Offload.storeFactory(cfg.Tracer)
		return nil, factory, actFactory, err
	}
	// Reuse storeFactory's backend dispatch (one switch, one error
	// message); a non-nil factory means the nvme backend, which the
	// placement re-routes through a tier-aware PlacedStore so only the
	// plan's NVMe-tier body spills.
	factory, err := cfg.Offload.storeFactory(cfg.Tracer)
	if err != nil || factory == nil {
		return plan, nil, actFactory, err
	}
	p := *plan
	return plan, func(rank int) (stv.BucketStore, error) {
		return stv.NewPlacedStoreFlash(p, func() (stv.BucketStore, error) {
			return cfg.Offload.newFlashStore(cfg.Tracer, fmt.Sprintf("rank %d nvme", rank))
		})
	}, actFactory, nil
}

// StoreTelemetry is the NVMe store's modeled-time accounting (reads,
// writes, stalls, overlapped compute); see stv.StoreTelemetry.
type StoreTelemetry = stv.StoreTelemetry

// MLPTelemetry is the multi-path store's extended accounting (per-path
// occupancy, DRAM cache hits, degradation events); see stv.MLPTelemetry.
type MLPTelemetry = stv.MLPTelemetry

// PathEvent is one degradation event (quarantine, reroute, recover, pin)
// in a multi-path store's lifetime; see stv.PathEvent.
type PathEvent = stv.PathEvent

// PlacementConfig selects the adaptive weight-update placement: which
// buckets update synchronously on the GPU (the §4.3 GPU-retained tail)
// versus flowing over NVLink-C2C to the CPU Adam — and, combined with
// the nvme offload backend, which spill through the windowed flash
// store. Any placement trains bit-identically to the homogeneous
// engine; what changes is residency and the modeled step time the
// virtual-clock superchip executor reports.
type PlacementConfig struct {
	// Mode selects the plan: "" (homogeneous, no placement modeling),
	// "auto" (the paper's GPU-retained tail — pinned by GPUBuckets or
	// derived by grid search over the virtual-clock model), "cpu"
	// (every bucket on the CPU Adam path), or "gpu" (every bucket
	// GPU-resident).
	Mode string
	// GPUBuckets pins the GPU-retained tail size in auto mode (0
	// derives it; values beyond the bucket count clamp).
	GPUBuckets int
	// Batch and Seq hint the per-step shape the auto grid search times
	// against (defaults: 1 row × the model's max sequence length).
	Batch int
	Seq   int
}

// PlacementTelemetry is the virtual-clock superchip executor's modeled
// accounting (backward, per-tier phase seconds, pipelined vs serialized
// step time); see stv.PlacementTelemetry.
type PlacementTelemetry = stv.PlacementTelemetry

// DefaultOptimizer returns the standard GPT training recipe.
func DefaultOptimizer() OptimizerConfig {
	d := optim.DefaultConfig()
	return OptimizerConfig{LR: d.LR, Beta1: d.Beta1, Beta2: d.Beta2, Eps: d.Eps, ClipNorm: 1.0}
}

// Batch is one training batch in flattened (batch*seq) layout.
type Batch = data.Batch

// Engine trains a Model with SuperOffload's schedule: CPU-resident fp32
// master weights and Adam moments, bucketized speculative updates,
// background validation, and exact rollback (§4.4).
type Engine struct {
	trainer *stv.Trainer
	guard   *hbmGuard
}

// translate expands an OptimizerConfig into the Adam config, loss scaler,
// and learning-rate schedule both engines share — one place, so the
// single-rank and data-parallel engines can never diverge on
// hyperparameter wiring.
func (cfg OptimizerConfig) translate() (optim.Config, *optim.LossScaler, func(int) float64) {
	a := optim.Config{LR: cfg.LR, Beta1: cfg.Beta1, Beta2: cfg.Beta2, Eps: cfg.Eps, WeightDecay: cfg.WeightDecay}
	if a.LR == 0 {
		a = optim.DefaultConfig()
	}
	var scaler *optim.LossScaler
	if cfg.LossScaling {
		scaler = optim.NewLossScaler()
	}
	var schedule func(int) float64
	if cfg.TotalSteps > 0 {
		schedule = stv.WarmupCosine(cfg.WarmupSteps, cfg.TotalSteps, cfg.MinLRFrac)
	}
	return a, scaler, schedule
}

// Init wraps a model and optimizer into a SuperOffload engine — the
// counterpart of the paper's `SuperOffload.init(model, optimizer)`.
func Init(m *Model, cfg OptimizerConfig) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("superoffload: nil model")
	}
	mode := stv.STV
	if cfg.Synchronous {
		mode = stv.STE
	}
	plan, factory, actFactory, err := cfg.trainSetup(m)
	if err != nil {
		return nil, err
	}
	var store stv.BucketStore
	if factory != nil {
		if store, err = factory(0); err != nil {
			return nil, err
		}
	}
	var actStore *act.Store
	if actFactory != nil {
		if actStore, err = actFactory(0); err != nil {
			return nil, err
		}
	}
	a, scaler, schedule := cfg.translate()
	tr := stv.NewTrainer(m.gpt, stv.Config{
		Adam: a, Impl: optim.GraceAdam, ClipNorm: cfg.ClipNorm,
		BucketElems: cfg.BucketElems, Mode: mode, Scaler: scaler,
		Schedule: schedule, Store: store, Placement: plan, Act: actStore,
		Tracer: cfg.Tracer,
	})
	return &Engine{trainer: tr, guard: cfg.newHBMGuard(m, 1, 1)}, nil
}

// Step runs one training iteration (forward, backward, speculative
// optimizer step, background validation) and returns the batch loss.
func (e *Engine) Step(b Batch) (float64, error) {
	if err := e.guard.check(b); err != nil {
		return 0, err
	}
	return e.trainer.Step(b)
}

// StepAccum runs one optimizer step over several accumulated micro-batches
// (the §5.2 OOM-mitigation path) and returns the mean loss.
func (e *Engine) StepAccum(batches []Batch) (float64, error) {
	if err := e.guard.checkAll(batches); err != nil {
		return 0, err
	}
	return e.trainer.StepAccum(batches)
}

// Save serializes the training state (fp32 masters, Adam moments, step
// counters, loss scale). Call Flush first; an in-flight validation blocks
// checkpointing.
func (e *Engine) Save(w io.Writer) error { return e.trainer.Save(w) }

// Load restores state saved by Save into an engine over the same model
// architecture and bucket configuration.
func (e *Engine) Load(r io.Reader) error { return e.trainer.Load(r) }

// Flush resolves the final in-flight validation; call once after the last
// Step.
func (e *Engine) Flush() error {
	_, err := e.trainer.Flush()
	return err
}

// Stats reports validation outcomes (commits, clip rollbacks, NaN skips).
type Stats = stv.Stats

// Stats returns the engine's validation counters.
func (e *Engine) Stats() Stats { return e.trainer.Stats() }

// NumBuckets reports how many offload buckets the parameter space uses.
func (e *Engine) NumBuckets() int { return e.trainer.NumBuckets() }

// StoreTelemetry returns the modeled NVMe-tier accounting; ok is false
// when optimizer state is DRAM-resident (nothing to model).
func (e *Engine) StoreTelemetry() (StoreTelemetry, bool) {
	if src, ok := e.trainer.Store().(stv.TelemetrySource); ok {
		return src.NVMeTelemetry()
	}
	return StoreTelemetry{}, false
}

// PlacementTelemetry returns the virtual-clock superchip executor's
// modeled accounting; ok is false without a placement plan.
func (e *Engine) PlacementTelemetry() (PlacementTelemetry, bool) {
	return e.trainer.PlacementTelemetry()
}

// ActTelemetry returns the activation store's traffic and modeled-time
// accounting; ok is false without an activation tier.
func (e *Engine) ActTelemetry() (ActTelemetry, bool) { return e.trainer.ActTelemetry() }

// Close releases the engine's bucket store (the nvme backend holds a
// backing file and an IO worker). Call Flush first; safe on the dram
// backend too.
func (e *Engine) Close() error { return e.trainer.Close() }

// ---- multi-superchip data-parallel engine ----

// DPConfig configures multi-superchip data parallelism.
type DPConfig struct {
	// Ranks is the simulated Superchip count R (the paper's headline
	// configurations are 2× and 4× GH200 with ZeRO-3-style sharding).
	Ranks int
}

// DPEngine trains a Model across R simulated superchip ranks: every rank
// runs forward/backward on its slice of the global batch over a full
// model replica, while the fp32 master weights and Adam moments are
// partitioned across ranks along bucket boundaries (ZeRO-style). Gradients
// reduce-scatter and post-step fp16 weights all-gather over channel links,
// overlapping with STV's speculative step and background validation; a
// clip or NaN rollback on any rank rolls back the globally reduced step on
// every rank. For the same global batch, the loss trajectory is
// bit-identical to the single-rank Engine processing the same R-way
// micro-batch decomposition.
type DPEngine struct {
	engine *dp.Engine
	guard  *hbmGuard
}

// InitDP wraps a model and optimizer into a data-parallel SuperOffload
// engine. Its Step/StepAccum/Save/Load/Stats surface matches Engine's;
// checkpoints are interchangeable between rank counts (including with the
// single-rank Engine). Call Close when done to stop the rank goroutines.
func InitDP(m *Model, cfg OptimizerConfig, dpc DPConfig) (*DPEngine, error) {
	if m == nil {
		return nil, fmt.Errorf("superoffload: nil model")
	}
	plan, factory, actFactory, err := cfg.trainSetup(m)
	if err != nil {
		return nil, err
	}
	a, scaler, schedule := cfg.translate()
	e, err := dp.New(m.gpt, dp.Config{
		Ranks:       dpc.Ranks,
		Adam:        a,
		Impl:        optim.GraceAdam,
		ClipNorm:    cfg.ClipNorm,
		BucketElems: cfg.BucketElems,
		Synchronous: cfg.Synchronous,
		Scaler:      scaler,
		Schedule:    schedule,
		NewStore:    factory,
		NewActStore: actFactory,
		Placement:   plan,
		Tracer:      cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &DPEngine{engine: e, guard: cfg.newHBMGuard(m, dpc.Ranks, 1)}, nil
}

// Step runs one training iteration over the global batch (its rows split
// evenly across ranks) and returns the mean loss.
func (e *DPEngine) Step(b Batch) (float64, error) {
	if err := e.guard.check(b); err != nil {
		return 0, err
	}
	return e.engine.Step(b)
}

// StepAccum runs one optimizer step over several accumulated global
// micro-batches, each split across ranks.
func (e *DPEngine) StepAccum(batches []Batch) (float64, error) {
	if err := e.guard.checkAll(batches); err != nil {
		return 0, err
	}
	return e.engine.StepAccum(batches)
}

// Save serializes the sharded training state (gathered into the global
// bucket order, so the checkpoint is identical to a single-rank one).
func (e *DPEngine) Save(w io.Writer) error { return e.engine.Save(w) }

// Load restores state saved by either engine's Save.
func (e *DPEngine) Load(r io.Reader) error { return e.engine.Load(r) }

// Flush resolves the final in-flight validation; call once after the last
// Step.
func (e *DPEngine) Flush() error {
	_, err := e.engine.Flush()
	return err
}

// Stats returns the engine's validation counters.
func (e *DPEngine) Stats() Stats { return e.engine.Stats() }

// NumBuckets reports how many offload buckets the parameter space uses.
func (e *DPEngine) NumBuckets() int { return e.engine.NumBuckets() }

// Ranks reports the data-parallel degree.
func (e *DPEngine) Ranks() int { return e.engine.Ranks() }

// StoreTelemetry sums the modeled NVMe-tier accounting over every rank's
// store; ok is false when optimizer state is DRAM-resident.
func (e *DPEngine) StoreTelemetry() (StoreTelemetry, bool) { return e.engine.StoreTelemetry() }

// PlacementTelemetry sums the virtual-clock superchip executors' modeled
// accounting over every rank; ok is false without a placement plan.
func (e *DPEngine) PlacementTelemetry() (PlacementTelemetry, bool) {
	return e.engine.PlacementTelemetry()
}

// ActTelemetry sums the activation stores' traffic and modeled-time
// accounting over every rank; ok is false without an activation tier.
func (e *DPEngine) ActTelemetry() (ActTelemetry, bool) { return e.engine.ActTelemetry() }

// Close stops the rank goroutines (resolving any pending validation
// first). The engine is unusable afterwards.
func (e *DPEngine) Close() error { return e.engine.Close() }

// ---- sequence-parallel (SuperOffload-Ulysses) engine ----

// SPConfig configures sequence parallelism (§4.7): the paper's
// long-sequence scenario, where S superchips each hold a contiguous
// sequence shard and attention head-parallelizes via two all-to-alls per
// layer per pass.
type SPConfig struct {
	// SeqRanks is the sequence-parallel degree S. The model's head count
	// must divide by S, and every batch's sequence length must too.
	SeqRanks int
}

// SPCommStats counts the sequence-parallel link traffic (all-to-all
// payloads/floats and weight-gradient ring hops/floats).
type SPCommStats = dp.SPCommStats

// SPEngine trains a Model across S simulated superchip ranks with
// sequence sharding: every rank runs forward/backward on its sequence
// shard of every batch row over a full model replica, attention flips to
// head parallelism over channel all-to-alls, weight gradients reduce over
// a deterministic ring in global row order, and the fp32 masters and Adam
// moments stay ZeRO-partitioned along bucket boundaries behind pluggable
// bucket stores. For the same batches, the loss trajectory — rollbacks,
// checkpoints and all — is bit-identical to the single-rank Engine.
type SPEngine struct {
	engine *dp.SPEngine
	guard  *hbmGuard
}

// InitSP wraps a model and optimizer into a sequence-parallel SuperOffload
// engine. Its surface matches Engine's; checkpoints are interchangeable
// across sequence-rank counts (and with the other engines). Call Close
// when done to stop the rank goroutines.
func InitSP(m *Model, cfg OptimizerConfig, spc SPConfig) (*SPEngine, error) {
	if m == nil {
		return nil, fmt.Errorf("superoffload: nil model")
	}
	plan, factory, actFactory, err := cfg.trainSetup(m)
	if err != nil {
		return nil, err
	}
	a, scaler, schedule := cfg.translate()
	e, err := dp.NewSP(m.gpt, dp.Config{
		Ranks:       spc.SeqRanks,
		Adam:        a,
		Impl:        optim.GraceAdam,
		ClipNorm:    cfg.ClipNorm,
		BucketElems: cfg.BucketElems,
		Synchronous: cfg.Synchronous,
		Scaler:      scaler,
		Schedule:    schedule,
		NewStore:    factory,
		NewActStore: actFactory,
		Placement:   plan,
		Tracer:      cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &SPEngine{engine: e, guard: cfg.newHBMGuard(m, 1, spc.SeqRanks)}, nil
}

// Step runs one training iteration over the batch (its sequence sharded
// across ranks) and returns the mean loss.
func (e *SPEngine) Step(b Batch) (float64, error) {
	if err := e.guard.check(b); err != nil {
		return 0, err
	}
	return e.engine.Step(b)
}

// StepAccum runs one optimizer step over several accumulated
// micro-batches, each sequence-sharded across ranks.
func (e *SPEngine) StepAccum(batches []Batch) (float64, error) {
	if err := e.guard.checkAll(batches); err != nil {
		return 0, err
	}
	return e.engine.StepAccum(batches)
}

// Save serializes the sharded training state (gathered into the global
// bucket order, identical to a single-rank checkpoint).
func (e *SPEngine) Save(w io.Writer) error { return e.engine.Save(w) }

// Load restores state saved by any engine's Save.
func (e *SPEngine) Load(r io.Reader) error { return e.engine.Load(r) }

// Flush resolves the final in-flight validation; call once after the last
// Step.
func (e *SPEngine) Flush() error {
	_, err := e.engine.Flush()
	return err
}

// Stats returns the engine's validation counters.
func (e *SPEngine) Stats() Stats { return e.engine.Stats() }

// NumBuckets reports how many offload buckets the parameter space uses.
func (e *SPEngine) NumBuckets() int { return e.engine.NumBuckets() }

// SeqRanks reports the sequence-parallel degree.
func (e *SPEngine) SeqRanks() int { return e.engine.SeqRanks() }

// CommStats reports the cumulative all-to-all and ring traffic.
func (e *SPEngine) CommStats() SPCommStats { return e.engine.CommStats() }

// StoreTelemetry sums the modeled NVMe-tier accounting over every rank's
// store; ok is false when optimizer state is DRAM-resident.
func (e *SPEngine) StoreTelemetry() (StoreTelemetry, bool) { return e.engine.StoreTelemetry() }

// PlacementTelemetry sums the virtual-clock superchip executors' modeled
// accounting over every rank; ok is false without a placement plan.
func (e *SPEngine) PlacementTelemetry() (PlacementTelemetry, bool) {
	return e.engine.PlacementTelemetry()
}

// ActTelemetry sums the activation stores' traffic and modeled-time
// accounting over every rank; ok is false without an activation tier.
func (e *SPEngine) ActTelemetry() (ActTelemetry, bool) { return e.engine.ActTelemetry() }

// Close stops the rank goroutines (resolving any pending validation
// first). The engine is unusable afterwards.
func (e *SPEngine) Close() error { return e.engine.Close() }

// ---- hybrid R×S mesh engine ----

// MeshConfig configures the hybrid mesh: data parallelism across
// superchip groups composed with Ulysses sequence parallelism within
// each group — the paper's multi-superchip evaluation shape (Fig. 11a/b,
// Fig. 12).
type MeshConfig struct {
	// Ranks is the data-parallel degree R: the number of replica groups
	// the global batch's rows split across.
	Ranks int
	// SeqRanks is the per-group sequence-parallel degree S. The model's
	// head count must divide by S, and every batch's sequence length
	// must too. The mesh spawns R·S simulated superchip ranks.
	SeqRanks int
	// PipeRanks is the pipeline-parallel degree P, read only by InitPipe
	// (InitMesh ignores it): each (group, sequence) column splits the
	// transformer depth over P stage ranks running 1F1B. 0 means 1. The
	// model must have at least P transformer blocks; the full engine
	// spawns R·S·P simulated superchip ranks.
	PipeRanks int
}

// MeshEngine trains a Model across an R×S mesh of simulated superchip
// ranks: R data-parallel groups each running S-way sequence parallelism.
// A global batch's rows split across groups; within a group, every
// rank's forward/backward runs over its sequence shard with attention
// head-parallelized over channel all-to-alls, and the group's weight
// gradients reduce over a deterministic ring in global row order. Across
// groups, the per-group gradients reduce-scatter to bucket owners along
// bucket boundaries — the fp32 masters and Adam moments are
// ZeRO-partitioned over all R·S ranks behind pluggable bucket stores.
// For the same global batch, the loss trajectory — rollbacks,
// checkpoints and all — is bit-identical to the single-rank Engine
// processing the same R-way row decomposition (S is invisible to the
// numerics).
type MeshEngine struct {
	engine *dp.MeshEngine
	guard  *hbmGuard
}

// InitMesh wraps a model and optimizer into a hybrid R×S SuperOffload
// engine. Its surface matches Engine's; checkpoints are interchangeable
// across mesh shapes (and with every other engine). Call Close when done
// to stop the rank goroutines.
func InitMesh(m *Model, cfg OptimizerConfig, mc MeshConfig) (*MeshEngine, error) {
	if m == nil {
		return nil, fmt.Errorf("superoffload: nil model")
	}
	plan, factory, actFactory, err := cfg.trainSetup(m)
	if err != nil {
		return nil, err
	}
	a, scaler, schedule := cfg.translate()
	e, err := dp.NewMesh(m.gpt, dp.Config{
		Ranks:       mc.Ranks,
		SeqRanks:    mc.SeqRanks,
		Adam:        a,
		Impl:        optim.GraceAdam,
		ClipNorm:    cfg.ClipNorm,
		BucketElems: cfg.BucketElems,
		Synchronous: cfg.Synchronous,
		Scaler:      scaler,
		Schedule:    schedule,
		NewStore:    factory,
		NewActStore: actFactory,
		Placement:   plan,
		Tracer:      cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &MeshEngine{engine: e, guard: cfg.newHBMGuard(m, mc.Ranks, mc.SeqRanks)}, nil
}

// Step runs one training iteration over the global batch (rows split
// across the R groups, each slice's sequence split across the group's S
// ranks) and returns the mean loss.
func (e *MeshEngine) Step(b Batch) (float64, error) {
	if err := e.guard.check(b); err != nil {
		return 0, err
	}
	return e.engine.Step(b)
}

// StepAccum runs one optimizer step over several accumulated global
// micro-batches, each sharded over the mesh.
func (e *MeshEngine) StepAccum(batches []Batch) (float64, error) {
	if err := e.guard.checkAll(batches); err != nil {
		return 0, err
	}
	return e.engine.StepAccum(batches)
}

// Save serializes the sharded training state (gathered into the global
// bucket order, identical to a single-rank checkpoint).
func (e *MeshEngine) Save(w io.Writer) error { return e.engine.Save(w) }

// Load restores state saved by any engine's Save.
func (e *MeshEngine) Load(r io.Reader) error { return e.engine.Load(r) }

// Flush resolves the final in-flight validation; call once after the
// last Step.
func (e *MeshEngine) Flush() error {
	_, err := e.engine.Flush()
	return err
}

// Stats returns the engine's validation counters.
func (e *MeshEngine) Stats() Stats { return e.engine.Stats() }

// NumBuckets reports how many offload buckets the parameter space uses.
func (e *MeshEngine) NumBuckets() int { return e.engine.NumBuckets() }

// Ranks reports the data-parallel degree R (the number of replica
// groups).
func (e *MeshEngine) Ranks() int { return e.engine.Ranks() }

// SeqRanks reports the per-group sequence-parallel degree S.
func (e *MeshEngine) SeqRanks() int { return e.engine.SeqRanks() }

// CommStats reports the cumulative all-to-all and ring traffic over
// every group's links.
func (e *MeshEngine) CommStats() SPCommStats { return e.engine.CommStats() }

// StoreTelemetry sums the modeled NVMe-tier accounting over every rank's
// store; ok is false when optimizer state is DRAM-resident.
func (e *MeshEngine) StoreTelemetry() (StoreTelemetry, bool) { return e.engine.StoreTelemetry() }

// PlacementTelemetry sums the virtual-clock superchip executors' modeled
// accounting over every rank; ok is false without a placement plan.
func (e *MeshEngine) PlacementTelemetry() (PlacementTelemetry, bool) {
	return e.engine.PlacementTelemetry()
}

// ActTelemetry sums the activation stores' traffic and modeled-time
// accounting over every rank; ok is false without an activation tier.
func (e *MeshEngine) ActTelemetry() (ActTelemetry, bool) { return e.engine.ActTelemetry() }

// Close stops the rank goroutines (resolving any pending validation
// first). The engine is unusable afterwards.
func (e *MeshEngine) Close() error { return e.engine.Close() }

// ---- 3-D R×S×P pipeline engine ----

// PipeEngine trains a Model across the full 3-D R×S×P engine: R
// data-parallel groups × S-way sequence parallelism per cell × P
// pipeline stages per column, scheduled 1F1B over each step's
// micro-batches. Boundary activations and gradients flow over
// per-column channel links; the fp32 masters and Adam moments stay
// ZeRO-partitioned over all R·S·P ranks. For the same global batch, the
// loss trajectory — rollbacks, checkpoints and all — is bit-identical
// to the single-rank Engine processing the same R-way row decomposition
// (S and P are invisible to the numerics), and checkpoints move freely
// across (R,S,P) shapes.
type PipeEngine struct {
	engine *dp.PipeEngine
	guard  *hbmGuard
}

// InitPipe wraps a model and optimizer into the 3-D R×S×P SuperOffload
// engine (mc.PipeRanks sets P; InitMesh is the P=1 special case). Its
// surface matches Engine's; use StepAccum with several micro-batches to
// actually overlap the stages — one micro-batch degenerates to
// sequential stages. Call Close when done to stop the rank goroutines.
func InitPipe(m *Model, cfg OptimizerConfig, mc MeshConfig) (*PipeEngine, error) {
	if m == nil {
		return nil, fmt.Errorf("superoffload: nil model")
	}
	plan, factory, actFactory, err := cfg.trainSetup(m)
	if err != nil {
		return nil, err
	}
	a, scaler, schedule := cfg.translate()
	e, err := dp.NewPipe(m.gpt, dp.Config{
		Ranks:       mc.Ranks,
		SeqRanks:    mc.SeqRanks,
		PipeRanks:   mc.PipeRanks,
		Adam:        a,
		Impl:        optim.GraceAdam,
		ClipNorm:    cfg.ClipNorm,
		BucketElems: cfg.BucketElems,
		Synchronous: cfg.Synchronous,
		Scaler:      scaler,
		Schedule:    schedule,
		NewStore:    factory,
		NewActStore: actFactory,
		Placement:   plan,
		Tracer:      cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &PipeEngine{engine: e, guard: cfg.newHBMGuard(m, mc.Ranks, mc.SeqRanks)}, nil
}

// Step runs one training iteration over the global batch (rows split
// across the R groups, sequence split across each cell's S ranks, depth
// split across each column's P stages) and returns the mean loss.
func (e *PipeEngine) Step(b Batch) (float64, error) {
	if err := e.guard.check(b); err != nil {
		return 0, err
	}
	return e.engine.Step(b)
}

// StepAccum runs one optimizer step over several accumulated global
// micro-batches — the pipeline's natural shape: M micro-batches fill
// the 1F1B schedule, shrinking each stage's idle bubble to
// (P-1)/(M+P-1) of its compute.
func (e *PipeEngine) StepAccum(batches []Batch) (float64, error) {
	if err := e.guard.checkAll(batches); err != nil {
		return 0, err
	}
	return e.engine.StepAccum(batches)
}

// Save serializes the sharded training state (gathered into the global
// bucket order, identical to a single-rank checkpoint).
func (e *PipeEngine) Save(w io.Writer) error { return e.engine.Save(w) }

// Load restores state saved by any engine's Save.
func (e *PipeEngine) Load(r io.Reader) error { return e.engine.Load(r) }

// Flush resolves the final in-flight validation; call once after the
// last Step.
func (e *PipeEngine) Flush() error {
	_, err := e.engine.Flush()
	return err
}

// Stats returns the engine's validation counters.
func (e *PipeEngine) Stats() Stats { return e.engine.Stats() }

// NumBuckets reports how many offload buckets the parameter space uses.
func (e *PipeEngine) NumBuckets() int { return e.engine.NumBuckets() }

// Ranks reports the data-parallel degree R (the number of replica
// groups).
func (e *PipeEngine) Ranks() int { return e.engine.Ranks() }

// SeqRanks reports the per-cell sequence-parallel degree S.
func (e *PipeEngine) SeqRanks() int { return e.engine.SeqRanks() }

// PipeRanks reports the pipeline-parallel degree P (stages per column).
func (e *PipeEngine) PipeRanks() int { return e.engine.PipeRanks() }

// CommStats reports the cumulative link traffic: every cell's
// all-to-all and ring links plus the stage-boundary tensor sends.
func (e *PipeEngine) CommStats() SPCommStats { return e.engine.CommStats() }

// StoreTelemetry sums the modeled NVMe-tier accounting over every rank's
// store; ok is false when optimizer state is DRAM-resident.
func (e *PipeEngine) StoreTelemetry() (StoreTelemetry, bool) { return e.engine.StoreTelemetry() }

// PlacementTelemetry sums the virtual-clock superchip executors' modeled
// accounting over every rank; ok is false without a placement plan.
func (e *PipeEngine) PlacementTelemetry() (PlacementTelemetry, bool) {
	return e.engine.PlacementTelemetry()
}

// ActTelemetry sums the activation stores' traffic and modeled-time
// accounting over the final-stage ranks; ok is false without an
// activation tier.
func (e *PipeEngine) ActTelemetry() (ActTelemetry, bool) { return e.engine.ActTelemetry() }

// Close stops the rank goroutines (resolving any pending validation
// first). Idempotent; the engine is unusable afterwards.
func (e *PipeEngine) Close() error { return e.engine.Close() }

// NewCorpus returns the deterministic synthetic corpus used throughout the
// examples and experiments (the Pile stand-in; see DESIGN.md).
func NewCorpus(vocab int, seed uint64) *data.Corpus { return data.NewCorpus(vocab, seed) }

// ---- planning / simulation ----

// PlanRequest describes a workload to size on modeled GH200 hardware.
type PlanRequest struct {
	// Model is an Appendix A label ("5B", "13B", ...).
	Model string
	// Chips is the Superchip count (1, 2, 4, 8, 16, ...).
	Chips int
	// GlobalBatch and Seq define the iteration.
	GlobalBatch int
	Seq         int
}

// PlanResult is the planner's verdict for one system.
type PlanResult struct {
	System      string
	Fits        bool
	OOMReason   string
	TFLOPS      float64
	MFU         float64
	IterSeconds float64
	GPUIdleFrac float64
	MicroBatch  int
	GradAccum   int
	Checkpoint  bool
}

func toWorkload(req PlanRequest) (sched.Workload, error) {
	m, err := model.ByName(req.Model)
	if err != nil {
		return sched.Workload{}, err
	}
	if req.Chips < 1 {
		req.Chips = 1
	}
	if req.GlobalBatch < 1 {
		req.GlobalBatch = 8 * req.Chips
	}
	if req.Seq < 1 {
		req.Seq = 1024
	}
	return sched.Workload{Cluster: hw.ClusterFor(req.Chips), Model: m, GlobalBatch: req.GlobalBatch, Seq: req.Seq}, nil
}

func fromResult(r sched.Result) PlanResult {
	return PlanResult{
		System: r.System, Fits: r.Fits, OOMReason: r.OOM,
		TFLOPS: r.TFLOPS, MFU: r.MFU, IterSeconds: r.IterTime, GPUIdleFrac: r.GPUIdleFrac,
		MicroBatch: r.Exec.MicroBatch, GradAccum: r.Exec.GradAccum, Checkpoint: r.Exec.Checkpoint,
	}
}

// Plan sizes the workload under SuperOffload.
func Plan(req PlanRequest) (PlanResult, error) {
	w, err := toWorkload(req)
	if err != nil {
		return PlanResult{}, err
	}
	return fromResult(core.New().Plan(w)), nil
}

// PlanDescription is SuperOffload's decision record for a workload: the
// §4.2 policy, the §4.5 casting path, and the §4.3 bucket plan.
type PlanDescription struct {
	Policy     string  // "weight-stationary" or "weight-flow"
	CastPath   string  // "Cast_gpu↔Move_fp32" or "Cast_cpu↔Move_fp16"
	BucketMB   int     // transfer bucket size
	NBuckets   int     // bucket count for the per-rank shard
	GPUBuckets int     // §4.3 GPU-retained bucket tail (0 = fully offloaded)
	Efficiency float64 // Eq. 1-3 efficiency of weight streaming
	MicroBatch int
	GradAccum  int
	Checkpoint bool
	// ActResidentLayers and ActSpill are the activation tier's co-plan
	// under the same HBM budget: the largest write-behind window that
	// fits next to the optimizer placement, and whether it spills at all
	// (false means every layer stays resident and the tier is moot).
	ActResidentLayers int
	ActSpill          bool
}

// Describe returns the planner's decisions without running the full grid
// search (fast path for tooling).
func Describe(req PlanRequest) (PlanDescription, error) {
	w, err := toWorkload(req)
	if err != nil {
		return PlanDescription{}, err
	}
	p, ok := core.New().Describe(w)
	if !ok {
		return PlanDescription{}, fmt.Errorf("superoffload: %s does not fit %d chip(s)", req.Model, w.Chips())
	}
	return PlanDescription{
		Policy:     p.Policy.String(),
		CastPath:   p.CastPath.String(),
		BucketMB:   int(p.BucketBytes >> 20),
		NBuckets:   p.NBuckets,
		GPUBuckets: p.GPUBuckets,
		Efficiency: p.Efficiency,
		MicroBatch: p.Exec.MicroBatch,
		GradAccum:  p.Exec.GradAccum,
		Checkpoint: p.Exec.Checkpoint,

		ActResidentLayers: p.ActResidentLayers,
		ActSpill:          p.ActSpill,
	}, nil
}

// PlacementDescription is the analytic planner's adaptive weight-update
// placement for a workload, in a form the real engine consumes.
type PlacementDescription struct {
	// NBuckets and GPUBuckets are the analytic partition and its
	// GPU-retained tail (§4.3).
	NBuckets   int
	GPUBuckets int
	// Plan is the per-bucket tier census, e.g. "gpu×12+cpu×142".
	Plan string
	// Flags is the supertrain fragment reproducing the placement on the
	// real engine. -gpu-buckets pins the analytic tail as an absolute
	// count (clamped to the engine's own partition); when the target
	// partition is a different size, scale by the GPUBuckets/NBuckets
	// fraction (place.FromCore's mapping) or omit -gpu-buckets so the
	// engine derives its own tail with the same §4.3 policy.
	Flags string
}

// DescribePlacement maps the analytic planner's placement decision for
// the workload onto the real engine's configuration surface (the
// superplan -emit-placement path).
func DescribePlacement(req PlanRequest) (PlacementDescription, error) {
	w, err := toWorkload(req)
	if err != nil {
		return PlacementDescription{}, err
	}
	p, ok := core.New().Describe(w)
	if !ok {
		return PlacementDescription{}, fmt.Errorf("superoffload: %s does not fit %d chip(s)", req.Model, w.Chips())
	}
	plan := place.FromCore(p, p.NBuckets)
	return PlacementDescription{
		NBuckets:   p.NBuckets,
		GPUBuckets: p.GPUBuckets,
		Plan:       plan.String(),
		Flags:      fmt.Sprintf("-placement auto -gpu-buckets %d", p.GPUBuckets),
	}, nil
}

// Compare sizes the workload under SuperOffload and every baseline.
func Compare(req PlanRequest) ([]PlanResult, error) {
	w, err := toWorkload(req)
	if err != nil {
		return nil, err
	}
	var out []PlanResult
	for _, s := range experiments.Systems() {
		out = append(out, fromResult(s.Plan(w)))
	}
	return out, nil
}

// ModelNames lists the Appendix A workload labels.
func ModelNames() []string {
	var out []string
	for _, c := range model.AppendixA() {
		out = append(out, c.Name)
	}
	return out
}

// ---- experiments ----

// RunExperiment regenerates one of the paper's tables or figures by id
// (e.g. "fig10", "table2"); ExperimentNames lists the ids.
func RunExperiment(name string) (string, error) { return experiments.Run(name) }

// ExperimentNames lists the available experiment ids.
func ExperimentNames() []string { return experiments.Names() }
