// Ablation: cumulative effect of GraceAdam, Superchip-aware casting,
// speculation-then-validation, and bucketization repartitioning on the 5B
// workload (the paper's Table 2).
package main

import (
	"fmt"
	"log"

	"superoffload"
)

func main() {
	out, err := superoffload.RunExperiment("table2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// The two schedules, side by side (Figs. 3 and 8).
	for _, id := range []string{"fig3", "fig8"} {
		g, err := superoffload.RunExperiment(id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(g)
	}
}
