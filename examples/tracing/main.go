// Tracing: the unified observability layer end to end — record per-op
// schedule spans and store events with a Tracer, publish every engine
// telemetry surface into a MetricsRegistry, serve both over HTTP, and
// validate the Chrome trace export. The example polls its own /metrics
// endpoint mid-run and re-parses the trace JSON, so it doubles as the
// CI smoke test for the observability stack (it exits nonzero on any
// failure).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	"superoffload"
)

func main() {
	model, err := superoffload.NewModel(superoffload.ModelConfig{
		Layers: 2, Hidden: 64, Vocab: 128, MaxSeq: 32,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	optimizer := superoffload.DefaultOptimizer()
	optimizer.ClipNorm = 5.0
	// Step 1: hand the optimizer config a tracer. Every engine records
	// per-op schedule spans (one track per rank), store IO events, and
	// collective instants into it; leaving the field nil disables
	// tracing at zero cost.
	tracer := superoffload.NewTracer()
	optimizer.Tracer = tracer
	optimizer.Offload = superoffload.OffloadConfig{Backend: "nvme"}
	optimizer.BucketElems = 8192

	engine, err := superoffload.InitDP(model, optimizer, superoffload.DPConfig{Ranks: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Step 2: publish the engine's telemetry into a metrics registry.
	// Each Gather re-reads the engine, so the registry always serves
	// mid-run values.
	registry := superoffload.NewMetricsRegistry()
	superoffload.RegisterMetrics(registry, engine)

	// Step 3: serve /metrics, /trace, and /debug/pprof while training.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: superoffload.ObsHandler(registry, tracer)}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Printf("observability on http://%s\n", ln.Addr())

	corpus := superoffload.NewCorpus(128, 11)
	for step := 1; step <= 60; step++ {
		if _, err := engine.Step(corpus.NextBatch(4, 16)); err != nil {
			log.Fatal(err)
		}
		if step == 30 {
			// Mid-run: the endpoint must serve live counters while rank
			// goroutines are training and store workers are in flight.
			body := httpGet(fmt.Sprintf("http://%s/metrics", ln.Addr()))
			if !strings.Contains(body, "superoffload_stv_steps_total") ||
				!strings.Contains(body, "superoffload_nvme_reads_total") {
				log.Fatalf("mid-run /metrics missing expected series:\n%s", body)
			}
			fmt.Println("mid-run /metrics serves live superoffload_* counters")
		}
	}
	if err := engine.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := engine.Close(); err != nil {
		log.Fatal(err)
	}

	// The export must be valid Chrome trace-event JSON with the per-rank
	// schedule spans and the store's prefetch/flush instants.
	var buf bytes.Buffer
	if err := tracer.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		log.Fatalf("trace export is not valid JSON: %v", err)
	}
	seen := map[string]int{}
	for _, e := range trace.TraceEvents {
		seen[e.Name]++
	}
	for _, want := range []string{"forward", "backward", "speculate", "prefetch", "flush", "step"} {
		if seen[want] == 0 {
			log.Fatalf("trace has no %q events (got %v)", want, seen)
		}
	}
	fmt.Printf("trace: %d events (%d forward spans, %d prefetch instants) — valid Chrome trace JSON\n",
		len(trace.TraceEvents), seen["forward"], seen["prefetch"])
}

// httpGet fetches a URL and returns the body, fataling on any error.
func httpGet(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s", url, resp.Status)
	}
	return string(b)
}
