// The full 3-D R×S×P engine, for real: data parallelism across
// superchip groups × Ulysses sequence parallelism within each cell ×
// 1F1B pipeline stages down each column, on actual numerics. The
// transformer depth splits into P contiguous block ranges; boundary
// activations flow downstream and boundary gradients upstream over
// per-column links while the stages overlap M micro-batches under the
// one-forward-one-backward schedule. The headline property: every
// (R,S,P) shape lands — bit for bit — on the trajectory of single-rank
// training over the same R-way row decomposition (the sequence AND
// pipeline axes are invisible), checkpoints move freely across shapes,
// and the virtual-clock model shows the 1F1B stage time beating the
// serialized forward+backward whenever M ≥ 2.
package main

import (
	"bytes"
	"fmt"
	"log"

	"superoffload"
	"superoffload/internal/hw"
	"superoffload/internal/place"
)

const (
	steps  = 30
	accum  = 2  // micro-batches per step: M ≥ 2 makes 1F1B overlap real
	batch  = 4  // rows split across R groups
	seq    = 32 // positions split across S ranks within a cell
	layers = 4  // depth split across P stages within a column
	vocab  = 128
)

func train(ranks, seqRanks, pipeRanks int, backend string) ([]float64, superoffload.Stats, superoffload.SPCommStats, []byte) {
	model, err := superoffload.NewModel(superoffload.ModelConfig{
		Layers: layers, Hidden: 64, Heads: 4, Vocab: vocab, MaxSeq: seq,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := superoffload.DefaultOptimizer()
	cfg.ClipNorm = 4.0
	cfg.BucketElems = 16384 // several buckets → every rank owns a ZeRO shard
	cfg.Offload = superoffload.OffloadConfig{Backend: backend, ResidentBuckets: 2}
	engine, err := superoffload.InitPipe(model, cfg, superoffload.MeshConfig{
		Ranks: ranks, SeqRanks: seqRanks, PipeRanks: pipeRanks,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if cerr := engine.Close(); cerr != nil {
			log.Fatal(cerr)
		}
	}()
	corpus := superoffload.NewCorpus(vocab, 11)
	var losses []float64
	for step := 1; step <= steps; step++ {
		micros := make([]superoffload.Batch, accum)
		for m := range micros {
			micros[m] = corpus.NextBatch(batch, seq)
		}
		loss, err := engine.StepAccum(micros)
		if err != nil {
			log.Fatal(err)
		}
		losses = append(losses, loss)
	}
	if err := engine.Flush(); err != nil {
		log.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := engine.Save(&ckpt); err != nil {
		log.Fatal(err)
	}
	return losses, engine.Stats(), engine.CommStats(), ckpt.Bytes()
}

func main() {
	fmt.Printf("training one GPT (batch %d × %d micro-batches, seq %d, %d layers) across R×S×P engines:\n",
		batch, accum, seq, layers)
	// The reference carries degenerate sequence and pipeline axes:
	// bit-identical to the DP engine — and to a single-rank trainer
	// accumulating the same row slices.
	ref, refStats, _, refCkpt := train(2, 1, 1, "dram")
	for _, shape := range [][3]int{{2, 1, 2}, {2, 2, 2}, {1, 1, 4}} {
		r, s, p := shape[0], shape[1], shape[2]
		losses, stats, comm, ckpt := train(r, s, p, "dram")
		if r == 2 {
			for i := range ref {
				if losses[i] != ref[i] {
					log.Fatalf("R=%d,S=%d,P=%d diverged from the R=2 reference at step %d", r, s, p, i)
				}
			}
			if stats != refStats {
				log.Fatalf("R=%d,S=%d,P=%d stats diverged (%+v vs %+v)", r, s, p, stats, refStats)
			}
			if !bytes.Equal(ckpt, refCkpt) {
				log.Fatalf("R=%d,S=%d,P=%d checkpoint differs from the reference's bytes", r, s, p)
			}
		}
		note := "bit-identical to R=2×S=1×P=1, byte-identical checkpoint"
		if r != 2 {
			note = "R=1 trajectory (its own single-rank reference)"
		}
		fmt.Printf("  R=%d×S=%d×P=%d (%d ranks): loss %.4f → %.4f, %d commits, %d rollbacks — %s\n",
			r, s, p, r*s*p, losses[0], losses[steps-1], stats.Commits, stats.Rollbacks(), note)
		fmt.Printf("          links: %.0f stage-boundary sends/step (%.2f MB/step), %.0f all-to-all payloads/step\n",
			float64(comm.StageSends)/steps, float64(comm.StageFloats)*4/1e6/steps,
			float64(comm.A2APayloads)/steps)
	}

	// The full composition: eight ranks, every ZeRO shard behind its own
	// file-backed NVMe store window, stages still overlapping 1F1B.
	nvme, nvmeStats, _, nvmeCkpt := train(2, 2, 2, "nvme")
	for i := range ref {
		if nvme[i] != ref[i] {
			log.Fatal("nvme-backed pipeline run diverged: the store broke bit-exactness")
		}
	}
	if !bytes.Equal(nvmeCkpt, refCkpt) {
		log.Fatal("nvme-backed pipeline checkpoint differs from the reference's bytes")
	}
	fmt.Printf("  R=2×S=2×P=2 + nvme bucket stores: still bit-identical (%d commits, %d rollbacks)\n",
		nvmeStats.Commits, nvmeStats.Rollbacks())

	// The virtual-clock model of the win: 1F1B overlaps the stages, so a
	// stage's compute time beats serializing the replica's
	// forward+backward — strictly, whenever M ≥ 2 and P ≥ 2.
	shape := place.Shape{Tokens: batch * seq, Hidden: 64, Seq: seq, Params: 1 << 20,
		Pipe: place.PipeShape{Stages: 2, Micros: accum}}
	plan := place.Uniform(4, place.CPUAdam)
	bd := place.StepTimes(hw.DefaultSuperchip(), plan.Work([]int{1 << 18, 1 << 18, 1 << 18, 1 << 18}), 4, shape)
	if bd.PipeStage >= bd.Forward+bd.Backward {
		log.Fatal("modeled 1F1B stage time failed to beat the serialized forward+backward")
	}
	fmt.Printf("\nmodeled stage time (P=2, M=%d): %.3f ms 1F1B vs %.3f ms serialized compute (bubble %.3f ms)\n",
		accum, 1e3*bd.PipeStage, 1e3*(bd.Forward+bd.Backward), 1e3*bd.PipeBubble)
	fmt.Println("\nall three axes — replica groups, sequence shards, pipeline stages — and")
	fmt.Println("optimizer-state residency are invisible to the numerics; only traffic and")
	fmt.Println("the modeled step time change. (Two-axis runs: examples/hybrid_mesh.)")
}
