// Adaptive placement: the paper's §4.3 weight-update split on the real
// engine. The analytic planner decides how many buckets a paper-scale
// workload should retain on the GPU (the tail whose post-backward
// D2H → CPU-Adam → H2D round trip nothing can hide); the real STV engine
// consumes that decision through the placement subsystem and trains with
// a GPU-resident tail, a CPU-Adam body, and — composed with the nvme
// backend — an NVMe-windowed body, all bit-identical to the homogeneous
// engine. The virtual-clock superchip executor reports the modeled step
// time each placement would cost on a GH200, and this example self-checks
// both the exactness contract and the §4.3 claim (auto beats all-CPU).
package main

import (
	"fmt"
	"log"

	"superoffload"
)

const steps = 40

// train runs the toy model under one placement and returns its losses
// and the executor's telemetry.
func train(pc superoffload.PlacementConfig) ([]float64, superoffload.PlacementTelemetry, bool) {
	model, err := superoffload.NewModel(superoffload.ModelConfig{
		Layers: 2, Hidden: 64, Vocab: 128, MaxSeq: 16,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := superoffload.DefaultOptimizer()
	cfg.ClipNorm = 4.0
	cfg.BucketElems = 4096 // dozens of buckets, so the split is visible
	cfg.Placement = pc
	engine, err := superoffload.Init(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if cerr := engine.Close(); cerr != nil {
			log.Fatal(cerr)
		}
	}()
	corpus := superoffload.NewCorpus(128, 9)
	losses := make([]float64, 0, steps)
	for i := 0; i < steps; i++ {
		l, err := engine.Step(corpus.NextBatch(4, 16))
		if err != nil {
			log.Fatal(err)
		}
		losses = append(losses, l)
	}
	if err := engine.Flush(); err != nil {
		log.Fatal(err)
	}
	tel, ok := engine.PlacementTelemetry()
	return losses, tel, ok
}

func main() {
	// What the analytic planner would retain for the paper's 5B
	// single-Superchip workload — the decision the real engine reuses.
	p, err := superoffload.DescribePlacement(superoffload.PlanRequest{Model: "5B", Chips: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analytic 5B plan: GPU-retained tail %d of %d buckets (%s)\n", p.GPUBuckets, p.NBuckets, p.Plan)
	fmt.Printf("real engine: supertrain %s\n\n", p.Flags)

	ref, _, hasTel := train(superoffload.PlacementConfig{})
	if hasTel {
		log.Fatal("homogeneous run reported placement telemetry")
	}

	report := func(name string, pc superoffload.PlacementConfig) superoffload.PlacementTelemetry {
		losses, tel, ok := train(pc)
		if !ok {
			log.Fatalf("%s: no placement telemetry", name)
		}
		for i := range ref {
			if losses[i] != ref[i] {
				log.Fatalf("%s: loss diverged from the homogeneous engine at step %d", name, i)
			}
		}
		n := float64(tel.Steps)
		fmt.Printf("  %-10s %2d gpu / %2d cpu / %2d nvme buckets: %7.3f ms pipelined vs %7.3f ms serialized\n",
			name, tel.Tiers[0].Buckets, tel.Tiers[1].Buckets, tel.Tiers[2].Buckets,
			1e3*tel.PipelinedSeconds/n, 1e3*tel.SerializedSeconds/n)
		return tel
	}

	fmt.Printf("modeled GH200 step time per placement (%d real steps, bit-identical losses):\n", steps)
	cpu := report("all-cpu", superoffload.PlacementConfig{Mode: "cpu"})
	report("all-gpu", superoffload.PlacementConfig{Mode: "gpu"})
	auto := report("auto", superoffload.PlacementConfig{Mode: "auto", GPUBuckets: p.GPUBuckets, Batch: 4, Seq: 16})

	if auto.PipelinedSeconds >= cpu.PipelinedSeconds {
		log.Fatalf("§4.3 violated: auto pipelined %.6f s not below all-CPU %.6f s",
			auto.PipelinedSeconds, cpu.PipelinedSeconds)
	}
	fmt.Printf("\nOK: the GPU-retained tail's pipelined step time beats full CPU offload (%.3f ms vs %.3f ms)\n",
		1e3*auto.PipelinedSeconds/float64(auto.Steps), 1e3*cpu.PipelinedSeconds/float64(cpu.Steps))
}
