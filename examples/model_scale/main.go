// Model scale: the largest trainable model per system on 1, 4 and 16
// Superchips (the paper's Fig. 13), via the experiment harness.
package main

import (
	"fmt"
	"log"

	"superoffload"
)

func main() {
	out, err := superoffload.RunExperiment("fig13")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	fmt.Println("SuperOffload trains 25B on one Superchip (7x GPU-only), 50B on")
	fmt.Println("four, and 200B on sixteen — while ZeRO-Offload stays bounded by")
	fmt.Println("the full fp16 replica each GPU must hold.")
}
