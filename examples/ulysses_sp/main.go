// Ulysses sequence parallelism, for real: the paper's long-sequence
// scenario (§4.7, Fig. 12) runs here on actual numerics rather than the
// analytic MFU model behind `examples/long_sequence`. S simulated
// superchip ranks each own a contiguous sequence shard of every batch
// row; attention flips to head parallelism through two all-to-alls per
// layer per pass; weight gradients reduce over a deterministic ring; and
// the ZeRO-sharded optimizer state streams through per-rank bucket
// stores — composed with STV's speculative step, background validation,
// and exact rollback. The headline property: the loss trajectory is
// bit-identical to single-rank training on the same batches, for any
// rank count and either residency tier.
package main

import (
	"fmt"
	"log"

	"superoffload"
)

const (
	steps = 40
	batch = 2
	seq   = 32 // "long" for the toy model: 4 shards of 8 positions at S=4
	vocab = 128
)

func train(seqRanks int, backend string) ([]float64, superoffload.Stats, superoffload.SPCommStats) {
	model, err := superoffload.NewModel(superoffload.ModelConfig{
		Layers: 2, Hidden: 64, Heads: 4, Vocab: vocab, MaxSeq: seq,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := superoffload.DefaultOptimizer()
	cfg.ClipNorm = 4.0
	cfg.BucketElems = 16384 // several buckets → every rank owns a ZeRO shard
	cfg.Offload = superoffload.OffloadConfig{Backend: backend, ResidentBuckets: 2}
	engine, err := superoffload.InitSP(model, cfg, superoffload.SPConfig{SeqRanks: seqRanks})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if cerr := engine.Close(); cerr != nil {
			log.Fatal(cerr)
		}
	}()
	corpus := superoffload.NewCorpus(vocab, 11)
	var losses []float64
	for step := 1; step <= steps; step++ {
		loss, err := engine.Step(corpus.NextBatch(batch, seq))
		if err != nil {
			log.Fatal(err)
		}
		losses = append(losses, loss)
	}
	if err := engine.Flush(); err != nil {
		log.Fatal(err)
	}
	return losses, engine.Stats(), engine.CommStats()
}

func main() {
	fmt.Printf("training one GPT at sequence %d across 1, 2 and 4 sequence ranks:\n", seq)
	ref, refStats, _ := train(1, "dram")
	for _, s := range []int{2, 4} {
		losses, stats, comm := train(s, "dram")
		exact := true
		for i := range ref {
			if losses[i] != ref[i] {
				exact = false
				break
			}
		}
		if !exact || stats != refStats {
			log.Fatalf("S=%d diverged from single-rank training (stats %+v vs %+v)", s, stats, refStats)
		}
		fmt.Printf("  S=%d: loss %.4f → %.4f, %d commits, %d rollbacks — bit-identical to S=1\n",
			s, losses[0], losses[steps-1], stats.Commits, stats.Rollbacks())
		fmt.Printf("       links: %.0f all-to-all payloads/step (%.2f MB/step), %.0f ring hops/step\n",
			float64(comm.A2APayloads)/steps, float64(comm.A2AFloats)*4/1e6/steps,
			float64(comm.RingHops)/steps)
	}

	// The full §4.7 composition: sequence sharding over the NVMe
	// optimizer tier — long sequences AND optimizer state beyond DRAM.
	nvme, nvmeStats, _ := train(4, "nvme")
	for i := range ref {
		if nvme[i] != ref[i] {
			log.Fatal("nvme-backed SP run diverged: the store broke bit-exactness")
		}
	}
	fmt.Printf("  S=4 + nvme bucket stores: still bit-identical (%d commits, %d rollbacks)\n",
		nvmeStats.Commits, nvmeStats.Rollbacks())
	fmt.Println("\nsequence parallelism and optimizer-state residency are both")
	fmt.Println("invisible to the numerics; only the link traffic changes.")
	fmt.Println("(The analytic Fig. 12 scale model lives in examples/long_sequence.)")
}
