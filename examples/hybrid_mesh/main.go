// Hybrid R×S mesh training, for real: the composition behind the paper's
// multi-superchip results (Fig. 11a/b, Fig. 12) — data parallelism
// *across* superchip groups, Ulysses sequence parallelism *within* each
// group — runs here on actual numerics. A global batch's rows split
// across R replica groups; inside a group, S ranks each own a contiguous
// sequence shard, attention head-parallelizes through two all-to-alls
// per layer per pass, and the group's weight gradients reduce over a
// deterministic ring; across groups, the per-group gradients
// reduce-scatter to ZeRO bucket owners spread over all R·S ranks, each
// behind its own bucket store. The headline property: every mesh shape
// lands — bit for bit — on the trajectory of single-rank training over
// the same R-way row decomposition (the sequence axis is invisible), for
// either residency tier.
package main

import (
	"fmt"
	"log"

	"superoffload"
)

const (
	steps = 40
	batch = 4  // rows split across R groups
	seq   = 32 // positions split across S ranks within a group
	vocab = 128
)

func train(ranks, seqRanks int, backend string) ([]float64, superoffload.Stats, superoffload.SPCommStats) {
	model, err := superoffload.NewModel(superoffload.ModelConfig{
		Layers: 2, Hidden: 64, Heads: 4, Vocab: vocab, MaxSeq: seq,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := superoffload.DefaultOptimizer()
	cfg.ClipNorm = 4.0
	cfg.BucketElems = 16384 // several buckets → every rank owns a ZeRO shard
	cfg.Offload = superoffload.OffloadConfig{Backend: backend, ResidentBuckets: 2}
	engine, err := superoffload.InitMesh(model, cfg, superoffload.MeshConfig{Ranks: ranks, SeqRanks: seqRanks})
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if cerr := engine.Close(); cerr != nil {
			log.Fatal(cerr)
		}
	}()
	corpus := superoffload.NewCorpus(vocab, 11)
	var losses []float64
	for step := 1; step <= steps; step++ {
		loss, err := engine.Step(corpus.NextBatch(batch, seq))
		if err != nil {
			log.Fatal(err)
		}
		losses = append(losses, loss)
	}
	if err := engine.Flush(); err != nil {
		log.Fatal(err)
	}
	return losses, engine.Stats(), engine.CommStats()
}

func main() {
	fmt.Printf("training one GPT (batch %d, seq %d) across R×S superchip meshes:\n", batch, seq)
	// The R=2 reference is the mesh with a degenerate sequence axis:
	// bit-identical to the DP engine — and to a single-rank trainer
	// accumulating the two row slices.
	ref, refStats, _ := train(2, 1, "dram")
	for _, shape := range [][2]int{{2, 2}, {2, 4}} {
		r, s := shape[0], shape[1]
		losses, stats, comm := train(r, s, "dram")
		for i := range ref {
			if losses[i] != ref[i] {
				log.Fatalf("R=%d,S=%d diverged from the R=2 reference at step %d", r, s, i)
			}
		}
		if stats != refStats {
			log.Fatalf("R=%d,S=%d stats diverged (%+v vs %+v)", r, s, stats, refStats)
		}
		fmt.Printf("  R=%d×S=%d (%d ranks): loss %.4f → %.4f, %d commits, %d rollbacks — bit-identical to R=2×S=1\n",
			r, s, r*s, losses[0], losses[steps-1], stats.Commits, stats.Rollbacks())
		fmt.Printf("          links: %.0f all-to-all payloads/step (%.2f MB/step), %.0f ring hops/step\n",
			float64(comm.A2APayloads)/steps, float64(comm.A2AFloats)*4/1e6/steps,
			float64(comm.RingHops)/steps)
	}

	// The full composition: an 8-rank mesh with every rank's ZeRO shard
	// streaming through its own file-backed NVMe store window.
	nvme, nvmeStats, _ := train(2, 4, "nvme")
	for i := range ref {
		if nvme[i] != ref[i] {
			log.Fatal("nvme-backed mesh run diverged: the store broke bit-exactness")
		}
	}
	fmt.Printf("  R=2×S=4 + nvme bucket stores: still bit-identical (%d commits, %d rollbacks)\n",
		nvmeStats.Commits, nvmeStats.Rollbacks())
	fmt.Println("\nboth mesh axes — replica groups and sequence shards — and optimizer-state")
	fmt.Println("residency are invisible to the numerics; only the link traffic changes.")
	fmt.Println("(Single-axis runs: examples/multi_superchip and examples/ulysses_sp.)")
}
