// Single-Superchip sizing: compare SuperOffload against every baseline on
// one GH200 across model sizes — the paper's Fig. 10 scenario, via the
// public planning API.
package main

import (
	"fmt"
	"log"

	"superoffload"
)

func main() {
	for _, name := range []string{"3B", "5B", "13B", "25B"} {
		results, err := superoffload.Compare(superoffload.PlanRequest{
			Model: name, Chips: 1, GlobalBatch: 8, Seq: 1024,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s on a single GH200 (batch 8):\n", name)
		for _, r := range results {
			if !r.Fits {
				fmt.Printf("  %-15s OOM (%s)\n", r.System, r.OOMReason)
				continue
			}
			fmt.Printf("  %-15s %6.1f TFLOPS  (GPU idle %4.1f%%, micro=%d)\n",
				r.System, r.TFLOPS, 100*r.GPUIdleFrac, r.MicroBatch)
		}
	}
}
