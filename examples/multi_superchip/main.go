// Multi-superchip: the paper's headline multi-chip scale points — a
// 30B-class model on 2× GH200 (Qwen3-30B in §6.2) and a 70B-class model
// on 4× GH200 (Llama-70B) with ZeRO-3-style sharding — first sized
// analytically with the planner over the Appendix A workloads that fit
// the modeled memory envelope (25B on 2×, 50B on 4×), then demonstrated
// for real with the data-parallel engine: R simulated ranks,
// bucket-sharded optimizer state, gradient reduce-scatter, weight
// all-gather, and a loss trajectory bit-identical to single-rank
// training.
package main

import (
	"fmt"
	"log"

	"superoffload"
)

func main() {
	// ---- analytical: the 2× and 4× workloads on modeled hardware ----
	for _, w := range []struct {
		model string
		chips int
		batch int
	}{
		{"25B", 2, 16}, // the 2× GH200 scale point (Qwen3-30B class)
		{"50B", 4, 32}, // the 4× GH200 scale point (Llama-70B class)
	} {
		plan, err := superoffload.Plan(superoffload.PlanRequest{
			Model: w.model, Chips: w.chips, GlobalBatch: w.batch, Seq: 4096,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !plan.Fits {
			log.Fatalf("%s on %d chips should fit: %s", w.model, w.chips, plan.OOMReason)
		}
		fmt.Printf("%s on %d Superchips: %.0f TFLOPS/GPU (MFU %.2f), micro-batch %d, accum %d\n",
			w.model, w.chips, plan.TFLOPS, plan.MFU, plan.MicroBatch, plan.GradAccum)
	}

	// ---- real numerics: the same sharded schedule at toy scale ----
	cfg := superoffload.DefaultOptimizer()
	cfg.ClipNorm = 4.0
	// Shrink the bucket budget so the toy model splits into enough
	// buckets for every rank to own a real ZeRO shard (at paper scale
	// the default 64 MB buckets give hundreds per rank).
	cfg.BucketElems = 16384

	fmt.Println("\ntraining one GPT across 1, 2 and 4 simulated ranks (same global batch):")
	finalLoss := map[int]float64{}
	for _, ranks := range []int{1, 2, 4} {
		model, err := superoffload.NewModel(superoffload.ModelConfig{
			Layers: 2, Hidden: 64, Vocab: 128, MaxSeq: 16,
		}, 7)
		if err != nil {
			log.Fatal(err)
		}
		engine, err := superoffload.InitDP(model, cfg, superoffload.DPConfig{Ranks: ranks})
		if err != nil {
			log.Fatal(err)
		}
		corpus := superoffload.NewCorpus(128, 11)
		var losses []float64
		for step := 1; step <= 60; step++ {
			// Each rank takes batch/ranks rows; gradients reduce in
			// rank order; the owners' speculative Adam steps and the
			// background validation overlap the channel traffic.
			loss, err := engine.Step(corpus.NextBatch(4, 16))
			if err != nil {
				log.Fatal(err)
			}
			losses = append(losses, loss)
		}
		if err := engine.Flush(); err != nil {
			log.Fatal(err)
		}
		st := engine.Stats()
		fmt.Printf("  %d rank(s): loss %.4f → %.4f over %d buckets (%d commits, %d rollbacks)\n",
			ranks, losses[0], losses[len(losses)-1], engine.NumBuckets(), st.Commits, st.Rollbacks())
		finalLoss[ranks] = losses[len(losses)-1]
		if err := engine.Close(); err != nil {
			log.Fatal(err)
		}
	}

	// Each rank count decomposes the global batch differently (R
	// micro-batches of batch/R rows), so the runs differ only by
	// floating-point reduction order. (The bit-exact claim — an R-rank
	// engine reproduces the single-rank engine on the *same*
	// decomposition — is asserted by the internal/dp tests.)
	fmt.Printf("\nfinal-loss gaps: 1 vs 2 ranks %.2e, 2 vs 4 ranks %.2e (reduction-order noise only)\n",
		finalLoss[1]-finalLoss[2], finalLoss[2]-finalLoss[4])
	fmt.Println("ZeRO-style sharding: each rank holds 1/R of the fp32 masters and")
	fmt.Println("Adam moments; fp16 replicas stay full so forward/backward is local.")
}
