// NVMe offload: the repository's documented ext-nvme extension, on both
// layers. Analytically, ZeRO-Infinity's flash tier extends trainable
// model scale on a single Superchip far past the DDR bound (at a swap
// throughput price). For real, the same third tier runs under the STV
// engine: fp32 masters and Adam moments live in a file-backed store that
// keeps only a two-bucket window resident, prefetches the next bucket
// while the current one steps, and flushes write-behind — with a loss
// trajectory bit-identical to the DRAM-resident engine, rollbacks and
// all.
package main

import (
	"fmt"
	"log"

	"superoffload"
)

func main() {
	// ---- analytical: what the flash tier buys on modeled hardware ----
	out, err := superoffload.RunExperiment("ext-nvme")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)

	// ---- real numerics: the STV engine with windowed optimizer state ----
	const steps = 40
	train := func(backend string) ([]float64, superoffload.Stats, *superoffload.StoreTelemetry) {
		model, err := superoffload.NewModel(superoffload.ModelConfig{
			Layers: 2, Hidden: 64, Vocab: 128, MaxSeq: 16,
		}, 7)
		if err != nil {
			log.Fatal(err)
		}
		cfg := superoffload.DefaultOptimizer()
		cfg.ClipNorm = 4.0
		// Small buckets so the toy model splits into dozens of buckets;
		// the nvme backend then streams ~15× its resident window through
		// the backing file every step.
		cfg.BucketElems = 4096
		cfg.Offload = superoffload.OffloadConfig{Backend: backend, ResidentBuckets: 2}
		engine, err := superoffload.Init(model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Close surfaces latched background-IO failures from the nvme
		// worker; a dropped error here would hide a corrupted run.
		defer func() {
			if cerr := engine.Close(); cerr != nil {
				log.Fatal(cerr)
			}
		}()
		corpus := superoffload.NewCorpus(128, 11)
		var losses []float64
		for step := 1; step <= steps; step++ {
			loss, err := engine.Step(corpus.NextBatch(4, 16))
			if err != nil {
				log.Fatal(err)
			}
			losses = append(losses, loss)
		}
		if err := engine.Flush(); err != nil {
			log.Fatal(err)
		}
		if tel, ok := engine.StoreTelemetry(); ok {
			return losses, engine.Stats(), &tel
		}
		return losses, engine.Stats(), nil
	}

	fmt.Println("training the same GPT with DRAM-resident and NVMe-windowed optimizer state:")
	dramLosses, dramStats, _ := train("dram")
	nvmeLosses, nvmeStats, tel := train("nvme")

	exact := true
	for i := range dramLosses {
		if dramLosses[i] != nvmeLosses[i] {
			exact = false
			break
		}
	}
	fmt.Printf("  dram: loss %.4f → %.4f (%d commits, %d rollbacks)\n",
		dramLosses[0], dramLosses[steps-1], dramStats.Commits, dramStats.Rollbacks())
	fmt.Printf("  nvme: loss %.4f → %.4f (%d commits, %d rollbacks)\n",
		nvmeLosses[0], nvmeLosses[steps-1], nvmeStats.Commits, nvmeStats.Rollbacks())
	if !exact {
		log.Fatal("trajectories diverged: the store broke bit-exactness")
	}
	fmt.Println("  trajectories are bit-identical: residency is invisible to the numerics")

	fmt.Printf("\nflash traffic over %d steps: %d reads (%.1f MB), %d writes (%.1f MB)\n",
		steps, tel.Reads, float64(tel.BytesRead)/1e6, tel.Writes, float64(tel.BytesWritten)/1e6)
	fmt.Printf("modeled step time: %.3f ms pipelined vs %.3f ms serialized — the\n",
		1e3*tel.PipelinedSeconds()/steps, 1e3*tel.SerializedSeconds()/steps)
	fmt.Println("double-buffered prefetch keeps the Adam step off the fetch+flush critical path.")
}
