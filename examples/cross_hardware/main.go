// Cross-hardware: the paper's central thesis is that PCIe-era offloading
// decisions invert on Superchips. This example runs the planner's two key
// decisions — casting placement (§4.5) and weight-flow viability (§4.2) —
// across the three node generations of Table 1 and shows exactly where
// each flips.
package main

import (
	"fmt"

	"superoffload/internal/core"
	"superoffload/internal/hw"
	"superoffload/internal/model"
)

func main() {
	bucket := int64(32 << 20) // one 64 MB fp16 bucket
	m := model.Nearest(7e9)

	fmt.Println("Decision 1 — casting placement for one gradient bucket (§4.5):")
	for _, chip := range hw.Registry() {
		path := core.ChooseCastPath(chip, bucket)
		fp32 := core.CastCost(chip, core.CastGPUMoveFP32, bucket)
		fp16c := core.CastCost(chip, core.CastCPUMoveFP16, bucket)
		fmt.Printf("  %-9s link %-9s -> %-20s (fp32 path %6.2f ms, fp16 path %6.2f ms)\n",
			chip.Name, chip.Link.Name, path, fp32*1e3, fp16c*1e3)
	}

	fmt.Println("\nDecision 2 — can weight-flow hide weight streaming at batch 4, seq 1024 (Eq. 1-3)?")
	for _, chip := range hw.Registry() {
		eff := core.Efficiency(4, 1024, m.Params(),
			chip.GPU.PeakFLOPS*hw.GEMMEfficiencyMax, chip.Link.PeakBW)
		verdict := "no  (stay weight-stationary)"
		if eff >= core.MinEfficiencyForFlow {
			verdict = "yes (weight-flow viable)"
		}
		fmt.Printf("  %-9s efficiency %5.1f%% -> %s\n", chip.Name, 100*eff, verdict)
	}

	fmt.Println("\nDecision 3 — SA-DFG partition of the optimizer subgraph (§4.1):")
	for _, chip := range hw.Registry() {
		g := core.MixedPrecisionStepGraph(chip, bucket)
		aware := g.SuperchipAware()
		greedy := g.GreedyEdgeCut()
		fmt.Printf("  %-9s greedy edge-cut: casts on %v/%v   superchip-aware: casts on %v/%v\n",
			chip.Name, greedy[1], greedy[3], aware[1], aware[3])
	}
	fmt.Println("\nOn PCIe nodes the two partitioners agree (minimize volume); on the")
	fmt.Println("GH200 the superchip-aware partition moves both casts to the GPU and")
	fmt.Println("ships fp32 — the paper's Superchip-aware casting.")
}
