// Activation offloading: the SSDTrain-style tier that spills each
// layer's forward activations out of HBM as the forward pass's
// write-behind window slides past them, and prefetches them back ahead
// of the backward pass with async double buffering. The example makes
// the repository's three claims on a toy model, self-checking each:
//
//  1. A seq×batch shape whose resident activations overflow the modeled
//     HBM budget is rejected up front — and trains once -act-offload
//     shrinks the resident window.
//  2. Spilling is numerically invisible: the DRAM-cache and NVMe-file
//     tiers train bit-identically to the fully resident engine,
//     rollbacks and redo-forwards included.
//  3. The double-buffered prefetch keeps activation traffic off the
//     critical path: the pipelined virtual clock beats the serialized
//     spill+compute+fetch schedule.
package main

import (
	"fmt"
	"log"
	"strings"

	"superoffload"
	"superoffload/internal/hw"
)

const (
	steps = 25
	rows  = 2
	seq   = 32
)

func train(offload string, budget int64) ([]float64, superoffload.Stats, *superoffload.ActTelemetry) {
	model, err := superoffload.NewModel(superoffload.ModelConfig{
		Layers: 6, Hidden: 64, Heads: 4, Vocab: 128, MaxSeq: seq,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	cfg := superoffload.DefaultOptimizer()
	cfg.ClipNorm = 4.0
	cfg.Activation = superoffload.ActivationConfig{
		Offload: offload, ResidentLayers: 2, HBMBudgetBytes: budget,
	}
	engine, err := superoffload.Init(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Close surfaces latched background-IO failures from the nvme tier's
	// worker; a dropped error here would hide a corrupted run.
	defer func() {
		if cerr := engine.Close(); cerr != nil {
			log.Fatal(cerr)
		}
	}()
	corpus := superoffload.NewCorpus(128, 11)
	var losses []float64
	for step := 1; step <= steps; step++ {
		loss, err := engine.Step(corpus.NextBatch(rows, seq))
		if err != nil {
			log.Fatal(err)
		}
		losses = append(losses, loss)
	}
	if err := engine.Flush(); err != nil {
		log.Fatal(err)
	}
	if tel, ok := engine.ActTelemetry(); ok {
		return losses, engine.Stats(), &tel
	}
	return losses, engine.Stats(), nil
}

func main() {
	// ---- 1. the HBM guard: overflow without offload, trains with it ----
	// A budget sized for the fp16 replica plus three resident layers —
	// too small for all six, comfortable for the offloaded window of two.
	model, err := superoffload.NewModel(superoffload.ModelConfig{
		Layers: 6, Hidden: 64, Heads: 4, Vocab: 128, MaxSeq: seq,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	budget := 4*int64(model.NumParams()) + 3*hw.ActLayerBytes(rows*seq, 64, 4, seq)
	cfg := superoffload.DefaultOptimizer()
	cfg.Activation.HBMBudgetBytes = budget
	engine, err := superoffload.Init(model, cfg)
	if err != nil {
		log.Fatal(err)
	}
	_, err = engine.Step(superoffload.NewCorpus(128, 11).NextBatch(rows, seq))
	if err == nil {
		log.Fatal("overflowing shape trained without activation offload")
	}
	if !strings.Contains(err.Error(), "act-offload") {
		log.Fatalf("guard error does not hint at offloading: %v", err)
	}
	if cerr := engine.Close(); cerr != nil {
		log.Fatal(cerr)
	}
	fmt.Printf("without offload, the %d×%d shape overflows the %d MiB budget:\n  %v\n",
		rows, seq, budget>>20, err)

	// ---- 2. bit-exactness across tiers, under the same tight budget ----
	fmt.Println("\ntraining the same GPT resident (unlimited HBM), dram-spilled, and nvme-spilled:")
	resident, residentStats, residentTel := train("", 0)
	dram, dramStats, dramTel := train("dram", budget)
	nvme, nvmeStats, nvmeTel := train("nvme", budget)
	if residentTel != nil {
		log.Fatal("resident engine reported activation telemetry")
	}
	for i := range resident {
		if resident[i] != dram[i] || resident[i] != nvme[i] {
			log.Fatalf("trajectories diverged at step %d: the activation tier broke bit-exactness", i+1)
		}
	}
	if residentStats != dramStats || residentStats != nvmeStats {
		log.Fatalf("stats diverged across tiers: %+v vs %+v vs %+v", residentStats, dramStats, nvmeStats)
	}
	fmt.Printf("  loss %.4f → %.4f (%d commits, %d rollbacks) on all three\n",
		resident[0], resident[steps-1], residentStats.Commits, residentStats.Rollbacks())
	fmt.Println("  trajectories are bit-identical: spilling is invisible to the numerics")

	// ---- 3. the prefetch pipeline beats the serialized schedule ----
	fmt.Printf("\nper-pass traffic: %d spills (%.2f MB), %d fetches (%.2f MB) across %d passes\n",
		nvmeTel.Spills, float64(nvmeTel.BytesSpilled)/1e6,
		nvmeTel.Fetches, float64(nvmeTel.BytesFetched)/1e6, nvmeTel.Passes)
	for _, tier := range []struct {
		name string
		tel  *superoffload.ActTelemetry
	}{{"dram", dramTel}, {"nvme", nvmeTel}} {
		pipe, serial := tier.tel.PipelinedSeconds(), tier.tel.SerializedSeconds()
		if pipe >= serial {
			log.Fatalf("%s: pipelined %.3fs is not faster than serialized %.3fs", tier.name, pipe, serial)
		}
		fmt.Printf("  %s: %.3f ms pipelined vs %.3f ms serialized per step (prefetch hides %.0f%%)\n",
			tier.name, 1e3*pipe/steps, 1e3*serial/steps, 100*(1-pipe/serial))
	}
}
