// Long-sequence training: the paper's headline capability — a 13B model at
// million-token sequences on 8 Superchips via SuperOffload-Ulysses
// (Fig. 12), regenerated through the experiment harness.
package main

import (
	"fmt"
	"log"

	"superoffload"
)

func main() {
	out, err := superoffload.RunExperiment("fig12")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	fmt.Println("Headline: SuperOffload-Ulysses reaches 1M tokens (8x vanilla")
	fmt.Println("Ulysses) on 8 GH200 for the 13B model, at >50% MFU.")
}
