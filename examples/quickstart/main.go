// Quickstart: the paper's Fig. 1 in runnable form — enable SuperOffload
// around a standard training loop with a few lines.
package main

import (
	"fmt"
	"log"

	"superoffload"
)

func main() {
	// Standard pipeline: build a model, pick an optimizer...
	model, err := superoffload.NewModel(superoffload.ModelConfig{
		Layers: 2, Hidden: 64, Vocab: 128, MaxSeq: 32,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	optimizer := superoffload.DefaultOptimizer()
	// Tiny demo models have gradient norms ~3; keep clipping the rare
	// event it is in real training so speculation usually commits.
	optimizer.ClipNorm = 5.0

	// ...and wrap them: `model = SuperOffload.init(model, optimizer)`.
	engine, err := superoffload.Init(model, optimizer)
	if err != nil {
		log.Fatal(err)
	}

	corpus := superoffload.NewCorpus(128, 11)
	fmt.Printf("training %d parameters in %d offload buckets\n",
		model.NumParams(), engine.NumBuckets())
	for step := 1; step <= 100; step++ {
		batch := corpus.NextBatch(4, 16)
		loss, err := engine.Step(batch) // fwd + bwd + speculative optimizer
		if err != nil {
			log.Fatal(err)
		}
		if step%20 == 0 {
			fmt.Printf("step %3d  loss %.4f\n", step, loss)
		}
	}
	if err := engine.Flush(); err != nil {
		log.Fatal(err)
	}
	st := engine.Stats()
	fmt.Printf("validation: %d commits, %d rollbacks (all exact)\n",
		st.Commits, st.Rollbacks())
	if err := engine.Close(); err != nil {
		log.Fatal(err)
	}
}
