package main

import (
	"errors"
	"strings"
	"testing"
)

// goodFlags is a baseline combination every rule accepts.
func goodFlags() trainFlags {
	return trainFlags{
		steps: 10, layers: 4, hidden: 64, heads: 4, vocab: 128,
		batch: 4, seq: 16, ranks: 2, seqRanks: 2, pipeRank: 2,
		resident: 2, actResident: 2, ioPaths: 1,
		mode: "stv", offload: "dram",
	}
}

// TestValidateAcceptsGoodFlags pins the baseline so the rejection cases
// below fail for the reason they claim, not a stale baseline.
func TestValidateAcceptsGoodFlags(t *testing.T) {
	if err := goodFlags().validate(); err != nil {
		t.Fatalf("baseline flags rejected: %v", err)
	}
}

// TestValidateRejections drives every validation rule through a bad
// value and checks the failure is a usage error naming the offending
// flag — never a panic or a deep engine fault.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*trainFlags)
		wantMsg string
	}{
		{"zero steps", func(f *trainFlags) { f.steps = 0 }, "-steps"},
		{"tiny model", func(f *trainFlags) { f.hidden = 4 }, "model too small"},
		{"zero batch", func(f *trainFlags) { f.batch = 0 }, "-batch"},
		{"bad mode", func(f *trainFlags) { f.mode = "fast" }, "-mode"},
		{"bad offload", func(f *trainFlags) { f.offload = "tape" }, "-offload"},
		{"bad act offload", func(f *trainFlags) { f.actOffload = "tape" }, "-act-offload"},
		{"act window below store floor", func(f *trainFlags) { f.actResident = 1 }, "-act-resident-layers must be >= 2"},
		{"zero act window", func(f *trainFlags) { f.actResident = 0 }, "-act-resident-layers must be >= 2"},
		{"negative act window", func(f *trainFlags) { f.actResident = -3 }, "-act-resident-layers must be >= 2"},
		{"bad placement", func(f *trainFlags) { f.placement = "magic" }, "-placement"},
		{"negative gpu buckets", func(f *trainFlags) { f.gpuBuckets = -1 }, "-gpu-buckets"},
		{"gpu buckets without auto", func(f *trainFlags) { f.gpuBuckets = 2; f.placement = "cpu" }, "-gpu-buckets requires -placement auto"},
		{"zero resident window", func(f *trainFlags) { f.resident = 0 }, "-resident-buckets"},
		{"negative bucket elems", func(f *trainFlags) { f.bucketElems = -1 }, "-bucket-elems"},
		{"zero io paths", func(f *trainFlags) { f.ioPaths = 0 }, "-io-paths must be >= 1"},
		{"negative dram cache", func(f *trainFlags) { f.dramCache = -1 }, "-dram-cache-buckets must be >= 0"},
		{"io paths without nvme", func(f *trainFlags) { f.ioPaths = 2 }, "require -offload nvme"},
		{"dram cache without nvme", func(f *trainFlags) { f.dramCache = 4 }, "require -offload nvme"},
		{"zero ranks", func(f *trainFlags) { f.ranks = 0 }, "-ranks"},
		{"zero seq ranks", func(f *trainFlags) { f.seqRanks = 0 }, "-seq-ranks"},
		{"zero pipe ranks", func(f *trainFlags) { f.pipeRank = 0 }, "-pipe-ranks must be >= 1"},
		{"negative pipe ranks", func(f *trainFlags) { f.pipeRank = -2 }, "-pipe-ranks must be >= 1"},
		{"more stages than layers", func(f *trainFlags) { f.pipeRank = 5 }, "fewer than -pipe-ranks"},
		{"negative heads", func(f *trainFlags) { f.heads = -1 }, "-heads"},
		{"hidden not divisible by heads", func(f *trainFlags) { f.heads = 3; f.hidden = 64 }, "not divisible by 3 heads"},
		{"heads not divisible by seq ranks", func(f *trainFlags) { f.heads = 4; f.seqRanks = 3; f.seq = 15 }, "not divisible by -seq-ranks"},
		{"batch not divisible by ranks", func(f *trainFlags) { f.batch = 3 }, "-batch 3 not divisible by -ranks 2"},
		{"seq not divisible by seq ranks", func(f *trainFlags) { f.seq = 15 }, "-seq 15 not divisible by -seq-ranks 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := goodFlags()
			c.mutate(&f)
			err := f.validate()
			if err == nil {
				t.Fatalf("accepted %+v", f)
			}
			var ue usageErr
			if !errors.As(err, &ue) {
				t.Fatalf("error is %T, want usageErr (a usage message, not a runtime fault): %v", err, err)
			}
			if !strings.Contains(err.Error(), c.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, c.wantMsg)
			}
		})
	}
}

// TestValidateHeadDefaulting: the divisibility checks must see the head
// count the engine derives when -heads is 0 (hidden/64, floor 1).
func TestValidateHeadDefaulting(t *testing.T) {
	f := goodFlags()
	f.heads = 0
	f.hidden = 128 // derives 2 heads — divisible by seqRanks 2
	if err := f.validate(); err != nil {
		t.Fatalf("derived heads rejected: %v", err)
	}
	f.seqRanks = 4 // 2 derived heads cannot shard 4 ways
	f.seq = 16
	if err := f.validate(); err == nil {
		t.Fatal("derived head count not checked against -seq-ranks")
	}
}
