package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"superoffload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the -json report golden file")

// fakeEngine is a deterministic engine stand-in with every telemetry
// surface populated, so the golden report exercises each optional key.
type fakeEngine struct{}

func (fakeEngine) Step(b superoffload.Batch) (float64, error) { return 0, nil }
func (fakeEngine) Flush() error                               { return nil }
func (fakeEngine) Close() error                               { return nil }
func (fakeEngine) NumBuckets() int                            { return 12 }
func (fakeEngine) Stats() superoffload.Stats {
	return superoffload.Stats{Steps: 100, Commits: 97, ClipRolls: 2, SkipRolls: 1, Redos: 3}
}
func (fakeEngine) CommStats() superoffload.SPCommStats {
	return superoffload.SPCommStats{A2APayloads: 64, A2AFloats: 4096, RingHops: 32, RingFloats: 2048}
}
func (fakeEngine) StoreTelemetry() (superoffload.StoreTelemetry, bool) {
	return superoffload.StoreTelemetry{Reads: 10, Writes: 20, BytesRead: 1 << 20, BytesWritten: 2 << 20,
		ReadSeconds: 0.25, WriteSeconds: 0.5, StallSeconds: 0.125, ComputeSeconds: 1}, true
}
func (fakeEngine) PlacementTelemetry() (superoffload.PlacementTelemetry, bool) {
	var t superoffload.PlacementTelemetry
	t.Steps = 100
	t.BackwardSeconds = 2
	t.PipelinedSeconds = 3
	t.SerializedSeconds = 4
	t.Tiers[0].Buckets = 2
	t.Tiers[1].Buckets = 9
	t.Tiers[2].Buckets = 1
	return t, true
}
func (fakeEngine) ActTelemetry() (superoffload.ActTelemetry, bool) {
	return superoffload.ActTelemetry{Passes: 100, Spills: 300, Fetches: 300,
		BytesSpilled: 3 << 20, BytesFetched: 3 << 20}, true
}

// TestJSONReportGolden locks the -json output shape — key names, key
// order, nesting, and the versioned metrics_v1 snapshot — against a
// golden file. A mismatch means the machine-readable contract changed:
// bump the metrics_v1 key if the naming scheme moved, and regenerate
// with -update-golden.
func TestJSONReportGolden(t *testing.T) {
	reg := superoffload.NewMetricsRegistry()
	superoffload.RegisterMetrics(reg, fakeEngine{})
	rep := buildReport(fakeEngine{}, reg, 218496, "stv", "2×1×2 3-D engine", 100, 3.625)

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json report shape drifted from %s\n got:\n%s\nwant:\n%s\n(run go test ./cmd/supertrain -update-golden to accept)", golden, buf.Bytes(), want)
	}
}

// TestJSONReportOmitsAbsentTelemetry checks the optional keys stay
// absent for an engine without those surfaces (no comm/store/placement
// noise in single-rank DRAM runs).
func TestJSONReportOmitsAbsentTelemetry(t *testing.T) {
	rep := buildReport(bareEngine{}, nil, 1, "stv", "1 rank", 1, 0)
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"comm", "store", "placement", "act", "metrics_v1"} {
		if bytes.Contains(b, []byte(`"`+key+`"`)) {
			t.Errorf("report for a bare engine contains %q: %s", key, b)
		}
	}
}

// bareEngine exposes no optional telemetry surface.
type bareEngine struct{}

func (bareEngine) Step(b superoffload.Batch) (float64, error) { return 0, nil }
func (bareEngine) Flush() error                               { return nil }
func (bareEngine) Close() error                               { return nil }
func (bareEngine) NumBuckets() int                            { return 1 }
func (bareEngine) Stats() superoffload.Stats                  { return superoffload.Stats{} }
func (bareEngine) StoreTelemetry() (superoffload.StoreTelemetry, bool) {
	return superoffload.StoreTelemetry{}, false
}
func (bareEngine) PlacementTelemetry() (superoffload.PlacementTelemetry, bool) {
	return superoffload.PlacementTelemetry{}, false
}
func (bareEngine) ActTelemetry() (superoffload.ActTelemetry, bool) {
	return superoffload.ActTelemetry{}, false
}
