// Command supertrain trains a real (small) GPT with the SuperOffload
// engine: speculative per-bucket Adam steps on CPU-resident fp32 master
// weights, background validation, and exact rollback. It demonstrates the
// paper's Fig. 1 enablement and Fig. 14 behaviour on real numerics, and —
// with -ranks > 1 — the multi-superchip data-parallel engine with
// ZeRO-sharded optimizer state (the 2× and 4× GH200 configurations).
//
// Usage:
//
//	supertrain -steps 300 -layers 2 -hidden 64 -mode stv
//	supertrain -steps 300 -ranks 4 -batch 8
package main

import (
	"flag"
	"fmt"
	"log"

	"superoffload"
)

// engine is the surface shared by the single-rank and multi-rank engines.
type engine interface {
	Step(b superoffload.Batch) (float64, error)
	Flush() error
	Stats() superoffload.Stats
	NumBuckets() int
}

func main() {
	steps := flag.Int("steps", 300, "training iterations")
	layers := flag.Int("layers", 2, "transformer layers")
	hidden := flag.Int("hidden", 64, "hidden size")
	vocab := flag.Int("vocab", 128, "vocabulary size")
	batch := flag.Int("batch", 4, "global batch size (must divide by -ranks)")
	seq := flag.Int("seq", 16, "sequence length")
	mode := flag.String("mode", "stv", "schedule: stv (speculative) or ste (synchronous)")
	clip := flag.Float64("clip", 4.0, "global gradient-norm clip (0 disables)")
	ranks := flag.Int("ranks", 1, "simulated superchip ranks (data parallelism)")
	seed := flag.Uint64("seed", 42, "initialization seed")
	flag.Parse()

	model, err := superoffload.NewModel(superoffload.ModelConfig{
		Layers: *layers, Hidden: *hidden, Vocab: *vocab, MaxSeq: *seq,
	}, *seed)
	if err != nil {
		log.Fatal(err)
	}
	cfg := superoffload.DefaultOptimizer()
	cfg.ClipNorm = *clip
	cfg.Synchronous = *mode == "ste"
	cfg.LossScaling = true

	if *ranks < 1 {
		log.Fatalf("ranks must be >= 1, got %d", *ranks)
	}
	var eng engine
	if *ranks > 1 {
		if *batch%*ranks != 0 {
			log.Fatalf("batch %d not divisible by %d ranks", *batch, *ranks)
		}
		dpe, err := superoffload.InitDP(model, cfg, superoffload.DPConfig{Ranks: *ranks})
		if err != nil {
			log.Fatal(err)
		}
		defer dpe.Close()
		eng = dpe
	} else {
		e, err := superoffload.Init(model, cfg)
		if err != nil {
			log.Fatal(err)
		}
		eng = e
	}

	fmt.Printf("supertrain: %d params in %d buckets, %s schedule, %d rank(s)\n",
		model.NumParams(), eng.NumBuckets(), *mode, *ranks)

	corpus := superoffload.NewCorpus(*vocab, *seed+1)
	for i := 1; i <= *steps; i++ {
		loss, err := eng.Step(corpus.NextBatch(*batch, *seq))
		if err != nil {
			log.Fatal(err)
		}
		if i%(max(1, *steps/20)) == 0 {
			fmt.Printf("step %4d  loss %.4f\n", i, loss)
		}
	}
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("done: %d steps, %d commits, %d clip-rollbacks, %d skip-rollbacks, %d forward redos\n",
		st.Steps, st.Commits, st.ClipRolls, st.SkipRolls, st.Redos)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
