// Command supertrain trains a real (small) GPT with the SuperOffload
// engine: speculative per-bucket Adam steps on CPU-resident fp32 master
// weights, background validation, and exact rollback. It demonstrates the
// paper's Fig. 1 enablement and Fig. 14 behaviour on real numerics; with
// -ranks > 1 the multi-superchip data-parallel engine with ZeRO-sharded
// optimizer state (the 2× and 4× GH200 configurations); with
// -seq-ranks > 1 the SuperOffload-Ulysses sequence-parallel engine
// (§4.7): sequence-sharded ranks, two attention all-to-alls per layer,
// and a deterministic weight-gradient ring; and with both, the hybrid
// R×S mesh — data parallelism across superchip groups, sequence
// parallelism within each group, the paper's multi-superchip evaluation
// shape. -pipe-ranks > 1 adds the third axis: the transformer depth
// splits over P pipeline stages per (group, sequence) column, scheduled
// 1F1B — the full R×S×P 3-D engine. -placement enables the §4.3
// adaptive weight-update split (a GPU-retained bucket tail updating
// synchronously while the rest flows to the CPU Adam), timed by the
// virtual-clock superchip executor.
//
// Usage:
//
//	supertrain -steps 300 -layers 2 -hidden 64 -mode stv
//	supertrain -steps 300 -ranks 4 -batch 8
//	supertrain -steps 300 -seq-ranks 4 -seq 32 -heads 4
//	supertrain -steps 300 -ranks 2 -seq-ranks 2 -batch 8 -seq 32 -heads 4
//	supertrain -steps 300 -ranks 2 -seq-ranks 2 -pipe-ranks 2 -layers 4 -batch 8 -seq 32 -heads 4
//	supertrain -steps 300 -placement auto -bucket-elems 16384
//	supertrain -steps 100 -json > stats.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"superoffload"
)

// engine is the surface shared by the single-rank and multi-rank engines.
type engine interface {
	Step(b superoffload.Batch) (float64, error)
	Flush() error
	Stats() superoffload.Stats
	NumBuckets() int
	StoreTelemetry() (superoffload.StoreTelemetry, bool)
	PlacementTelemetry() (superoffload.PlacementTelemetry, bool)
	ActTelemetry() (superoffload.ActTelemetry, bool)
	Close() error
}

// commStatser is implemented by the engines with sequence-parallel links
// (SP and mesh).
type commStatser interface {
	CommStats() superoffload.SPCommStats
}

func main() {
	if err := run(); err != nil {
		var ue usageErr
		if errors.As(err, &ue) {
			// A flag-validation failure reads as a usage problem — message
			// plus the full usage text, exit 2 — rather than a runtime
			// fault deep in engine init.
			fmt.Fprintf(flag.CommandLine.Output(), "supertrain: %s\n\n", ue.msg)
			flag.Usage()
			os.Exit(2)
		}
		log.Fatal(err)
	}
}

// usageErr marks a flag-validation failure so main can render it as a
// usage message. Keeping it an ordinary error (no printing, no exit in
// validate) is what makes the validation rules unit-testable.
type usageErr struct{ msg string }

func (e usageErr) Error() string { return "supertrain: " + e.msg }

// usageError builds a usageErr from a format string.
func usageError(format string, args ...any) error {
	return usageErr{msg: fmt.Sprintf(format, args...)}
}

// trainFlags carries the parsed flag values by name, so every
// validation check reads the field it means (a positional int list
// would make argument swaps invisible to the compiler).
type trainFlags struct {
	steps, layers, hidden, heads, vocab   int
	batch, seq, ranks, seqRanks, pipeRank int
	resident, bucketElems, gpuBuckets     int
	actResident                           int
	ioPaths, dramCache                    int
	mode, offload, placement              string
	actOffload                            string
}

// validate rejects incompatible flag combinations before any engine
// construction. Divisibility rules: -batch must divide by -ranks (rows
// split across data-parallel groups), -seq by -seq-ranks (positions
// split within a group), -hidden by the effective head count, and the
// head count by -seq-ranks (heads shard across sequence ranks);
// -pipe-ranks needs at least that many -layers (each pipeline stage
// owns at least one transformer block).
func (f trainFlags) validate() error {
	if f.steps < 1 {
		return usageError("-steps must be >= 1, got %d", f.steps)
	}
	if f.layers < 1 || f.hidden < 8 || f.vocab < 2 {
		return usageError("model too small: need -layers >= 1, -hidden >= 8, -vocab >= 2 (got %d, %d, %d)", f.layers, f.hidden, f.vocab)
	}
	if f.batch < 1 || f.seq < 1 {
		return usageError("-batch and -seq must be >= 1, got %d and %d", f.batch, f.seq)
	}
	if f.mode != "stv" && f.mode != "ste" {
		return usageError("unknown -mode %q (want stv or ste)", f.mode)
	}
	if f.offload != "dram" && f.offload != "nvme" {
		return usageError("unknown -offload %q (want dram or nvme)", f.offload)
	}
	switch f.actOffload {
	case "", "dram", "nvme":
	default:
		return usageError("unknown -act-offload %q (want dram or nvme)", f.actOffload)
	}
	if f.actResident < 2 {
		return usageError("-act-resident-layers must be >= 2 (the activation store's minimum write-behind window), got %d", f.actResident)
	}
	switch f.placement {
	case "", "auto", "cpu", "gpu":
	default:
		return usageError("unknown -placement %q (want auto, cpu, or gpu)", f.placement)
	}
	if f.gpuBuckets < 0 {
		return usageError("-gpu-buckets must be >= 0, got %d", f.gpuBuckets)
	}
	if f.gpuBuckets > 0 && f.placement != "auto" {
		return usageError("-gpu-buckets requires -placement auto (got -placement %q)", f.placement)
	}
	if f.resident < 1 {
		return usageError("-resident-buckets must be >= 1, got %d", f.resident)
	}
	if f.ioPaths < 1 {
		return usageError("-io-paths must be >= 1, got %d", f.ioPaths)
	}
	if f.dramCache < 0 {
		return usageError("-dram-cache-buckets must be >= 0, got %d", f.dramCache)
	}
	if (f.ioPaths > 1 || f.dramCache > 0) && f.offload != "nvme" {
		return usageError("-io-paths/-dram-cache-buckets configure the flash tier and require -offload nvme (got -offload %q)", f.offload)
	}
	if f.bucketElems < 0 {
		return usageError("-bucket-elems must be >= 0, got %d", f.bucketElems)
	}
	if f.ranks < 1 {
		return usageError("-ranks must be >= 1, got %d", f.ranks)
	}
	if f.seqRanks < 1 {
		return usageError("-seq-ranks must be >= 1, got %d", f.seqRanks)
	}
	if f.pipeRank < 1 {
		return usageError("-pipe-ranks must be >= 1, got %d", f.pipeRank)
	}
	if f.layers < f.pipeRank {
		return usageError("-layers %d fewer than -pipe-ranks %d (each pipeline stage needs at least one transformer block)", f.layers, f.pipeRank)
	}
	if f.heads < 0 {
		return usageError("-heads must be >= 0, got %d", f.heads)
	}
	// Mirror NewModel's defaulting so the divisibility checks see the
	// head count the engine will actually use.
	effHeads := f.heads
	if effHeads == 0 {
		effHeads = f.hidden / 64
		if effHeads < 1 {
			effHeads = 1
		}
	}
	if f.hidden%effHeads != 0 {
		return usageError("-hidden %d not divisible by %d heads", f.hidden, effHeads)
	}
	if effHeads%f.seqRanks != 0 {
		return usageError("%d attention heads not divisible by -seq-ranks %d", effHeads, f.seqRanks)
	}
	if f.batch%f.ranks != 0 {
		return usageError("-batch %d not divisible by -ranks %d", f.batch, f.ranks)
	}
	if f.seq%f.seqRanks != 0 {
		return usageError("-seq %d not divisible by -seq-ranks %d", f.seq, f.seqRanks)
	}
	return nil
}

// jsonReport is the machine-readable run summary -json emits on stdout:
// final stats plus whatever telemetry the selected engine produced.
// MetricsV1 is the unified metrics snapshot (every registered
// superoffload_* sample by name); the _v1 suffix versions the key so
// consumers can detect naming-scheme changes.
type jsonReport struct {
	Params      int                              `json:"params"`
	Buckets     int                              `json:"buckets"`
	Mode        string                           `json:"mode"`
	Parallelism string                           `json:"parallelism"`
	Steps       int                              `json:"steps"`
	FinalLoss   float64                          `json:"final_loss"`
	Stats       superoffload.Stats               `json:"stats"`
	Comm        *superoffload.SPCommStats        `json:"comm,omitempty"`
	Store       *superoffload.StoreTelemetry     `json:"store,omitempty"`
	Placement   *superoffload.PlacementTelemetry `json:"placement,omitempty"`
	Act         *superoffload.ActTelemetry       `json:"act,omitempty"`
	MetricsV1   map[string]float64               `json:"metrics_v1,omitempty"`
}

func run() (err error) {
	steps := flag.Int("steps", 300, "training iterations")
	layers := flag.Int("layers", 2, "transformer layers")
	hidden := flag.Int("hidden", 64, "hidden size")
	heads := flag.Int("heads", 0, "attention heads (0: hidden/64, min 1; must divide hidden and -seq-ranks must divide it)")
	vocab := flag.Int("vocab", 128, "vocabulary size")
	batch := flag.Int("batch", 4, "global batch size (must divide by -ranks)")
	seq := flag.Int("seq", 16, "sequence length (must divide by -seq-ranks)")
	mode := flag.String("mode", "stv", "schedule: stv (speculative) or ste (synchronous)")
	clip := flag.Float64("clip", 4.0, "global gradient-norm clip (0 disables)")
	ranks := flag.Int("ranks", 1, "simulated superchip ranks (data parallelism; with -seq-ranks > 1, the mesh's group count)")
	seqRanks := flag.Int("seq-ranks", 1, "simulated superchip ranks (Ulysses sequence parallelism; with -ranks > 1, per-group)")
	pipeRanks := flag.Int("pipe-ranks", 1, "simulated superchip ranks (pipeline parallelism: 1F1B stages per column; -layers must be >= this)")
	seed := flag.Uint64("seed", 42, "initialization seed")
	offload := flag.String("offload", "dram", "optimizer-state tier: dram (resident) or nvme (file-backed window)")
	offloadDir := flag.String("offload-dir", "", "directory for nvme backing files (default: system temp)")
	resident := flag.Int("resident-buckets", 2, "nvme store resident-bucket window")
	ioPaths := flag.Int("io-paths", 1, "independently scheduled nvme flash paths: >1 stripes bucket records across per-path files (multi-path store; requires -offload nvme)")
	dramCache := flag.Int("dram-cache-buckets", 0, "DRAM cache tier in front of the nvme store, in buckets (0 disables; requires -offload nvme)")
	actOffload := flag.String("act-offload", "", "activation spill tier: dram (host cache over C2C), nvme (file-backed), or empty (activations stay resident)")
	actDir := flag.String("act-dir", "", "directory for nvme activation backing files (default: system temp)")
	actResident := flag.Int("act-resident-layers", 2, "activation write-behind window: layers kept resident with -act-offload (floor 2)")
	bucketElems := flag.Int("bucket-elems", 0, "per-bucket element budget (0: the 64 MB default; shrink so toy models split into several buckets)")
	placement := flag.String("placement", "", "bucket placement: auto (GPU-retained tail, §4.3), cpu, gpu, or empty (homogeneous)")
	gpuBuckets := flag.Int("gpu-buckets", 0, "pin the GPU-retained bucket tail in -placement auto (0: derive by grid search)")
	jsonOut := flag.Bool("json", false, "emit final stats and telemetry as JSON on stdout (suppresses the human progress log)")
	traceOut := flag.String("trace", "", "write the run's Chrome trace-event JSON to this file (open in Perfetto or chrome://tracing; one track per rank, store worker, and comm plane)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /trace, and /debug/pprof on this address during the run (e.g. localhost:6060; the bound address is logged)")
	flag.Parse()

	if err := (trainFlags{
		steps: *steps, layers: *layers, hidden: *hidden, heads: *heads, vocab: *vocab,
		batch: *batch, seq: *seq, ranks: *ranks, seqRanks: *seqRanks, pipeRank: *pipeRanks,
		resident: *resident, bucketElems: *bucketElems, gpuBuckets: *gpuBuckets,
		actResident: *actResident,
		ioPaths:     *ioPaths, dramCache: *dramCache,
		mode: *mode, offload: *offload, placement: *placement,
		actOffload: *actOffload,
	}).validate(); err != nil {
		return err
	}

	model, err := superoffload.NewModel(superoffload.ModelConfig{
		Layers: *layers, Hidden: *hidden, Heads: *heads, Vocab: *vocab, MaxSeq: *seq,
	}, *seed)
	if err != nil {
		return err
	}
	cfg := superoffload.DefaultOptimizer()
	cfg.ClipNorm = *clip
	cfg.Synchronous = *mode == "ste"
	cfg.LossScaling = true
	cfg.BucketElems = *bucketElems
	cfg.Offload = superoffload.OffloadConfig{
		Backend: *offload, Dir: *offloadDir, ResidentBuckets: *resident,
		IOPaths: *ioPaths, CacheBuckets: *dramCache,
	}
	cfg.Placement = superoffload.PlacementConfig{
		Mode: *placement, GPUBuckets: *gpuBuckets, Batch: *batch, Seq: *seq,
	}
	cfg.Activation = superoffload.ActivationConfig{
		Offload: *actOffload, Dir: *actDir, ResidentLayers: *actResident,
	}
	// Tracing turns on when anything consumes it: a trace file or the
	// live /trace endpoint. Nil otherwise — the engines' zero-cost mode.
	var tracer *superoffload.Tracer
	if *traceOut != "" || *obsAddr != "" {
		tracer = superoffload.NewTracer()
	}
	cfg.Tracer = tracer

	var eng engine
	parallelism := "1 rank"
	switch {
	case *pipeRanks > 1:
		pe, err := superoffload.InitPipe(model, cfg, superoffload.MeshConfig{
			Ranks: *ranks, SeqRanks: *seqRanks, PipeRanks: *pipeRanks,
		})
		if err != nil {
			return err
		}
		eng = pe
		parallelism = fmt.Sprintf("%d×%d×%d 3-D engine (%d DP groups × %d SP ranks × %d pipeline stages)",
			*ranks, *seqRanks, *pipeRanks, *ranks, *seqRanks, *pipeRanks)
	case *ranks > 1 && *seqRanks > 1:
		me, err := superoffload.InitMesh(model, cfg, superoffload.MeshConfig{Ranks: *ranks, SeqRanks: *seqRanks})
		if err != nil {
			return err
		}
		eng = me
		parallelism = fmt.Sprintf("%d×%d mesh (%d DP groups × %d SP ranks)", *ranks, *seqRanks, *ranks, *seqRanks)
	case *ranks > 1:
		dpe, err := superoffload.InitDP(model, cfg, superoffload.DPConfig{Ranks: *ranks})
		if err != nil {
			return err
		}
		eng = dpe
		parallelism = fmt.Sprintf("%d DP rank(s)", *ranks)
	case *seqRanks > 1:
		spe, err := superoffload.InitSP(model, cfg, superoffload.SPConfig{SeqRanks: *seqRanks})
		if err != nil {
			return err
		}
		eng = spe
		parallelism = fmt.Sprintf("%d SP rank(s)", *seqRanks)
	default:
		e, err := superoffload.Init(model, cfg)
		if err != nil {
			return err
		}
		eng = e
	}
	// Close surfaces latched NVMe background-IO failures; dropping its
	// error would let a corrupted-run signal vanish silently, so it joins
	// the command's exit status.
	defer func() {
		if cerr := eng.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("closing engine: %w", cerr)
		}
	}()

	reg := superoffload.NewMetricsRegistry()
	superoffload.RegisterMetrics(reg, eng)
	if *obsAddr != "" {
		ln, lerr := net.Listen("tcp", *obsAddr)
		if lerr != nil {
			return fmt.Errorf("observability listener: %w", lerr)
		}
		defer ln.Close()
		// Stderr so -json runs keep stdout machine-readable.
		fmt.Fprintf(os.Stderr, "supertrain: observability on http://%s (/metrics, /trace, /debug/pprof)\n", ln.Addr())
		srv := &http.Server{Handler: superoffload.ObsHandler(reg, tracer)}
		defer srv.Close()
		go srv.Serve(ln)
	}

	if !*jsonOut {
		fmt.Printf("supertrain: %d params in %d buckets, %s schedule, %s, %s offload\n",
			model.NumParams(), eng.NumBuckets(), *mode, parallelism, *offload)
	}

	corpus := superoffload.NewCorpus(*vocab, *seed+1)
	var loss float64
	for i := 1; i <= *steps; i++ {
		loss, err = eng.Step(corpus.NextBatch(*batch, *seq))
		if err != nil {
			return err
		}
		if !*jsonOut && i%(max(1, *steps/20)) == 0 {
			fmt.Printf("step %4d  loss %.4f\n", i, loss)
		}
	}
	if err := eng.Flush(); err != nil {
		return err
	}
	if *traceOut != "" {
		if terr := writeTrace(tracer, *traceOut); terr != nil {
			return terr
		}
		if !*jsonOut {
			fmt.Printf("trace: %d events written to %s\n", tracer.Len(), *traceOut)
		}
	}
	if *jsonOut {
		return emitJSON(eng, reg, model.NumParams(), *mode, parallelism, *steps, loss)
	}
	st := eng.Stats()
	fmt.Printf("done: %d steps, %d commits, %d clip-rollbacks, %d skip-rollbacks, %d forward redos\n",
		st.Steps, st.Commits, st.ClipRolls, st.SkipRolls, st.Redos)
	if cse, ok := eng.(commStatser); ok {
		cs := cse.CommStats()
		n := float64(*steps)
		fmt.Printf("ulysses links: %.1f all-to-all payloads/step (%.1f MB/step), %.1f ring hops/step (%.1f MB/step)\n",
			float64(cs.A2APayloads)/n, float64(cs.A2AFloats)*4/1e6/n,
			float64(cs.RingHops)/n, float64(cs.RingFloats)*4/1e6/n)
	}
	if tel, ok := eng.StoreTelemetry(); ok {
		n := float64(*steps)
		fmt.Printf("nvme tier: %d reads (%.1f MB), %d writes (%.1f MB)\n",
			tel.Reads, float64(tel.BytesRead)/1e6, tel.Writes, float64(tel.BytesWritten)/1e6)
		fmt.Printf("modeled step time: %.3f ms pipelined vs %.3f ms serialized (prefetch overlap hides %.0f%%)\n",
			1e3*tel.PipelinedSeconds()/n, 1e3*tel.SerializedSeconds()/n,
			100*(1-tel.PipelinedSeconds()/tel.SerializedSeconds()))
	}
	if tel, ok := eng.PlacementTelemetry(); ok && tel.Steps > 0 {
		n := float64(tel.Steps)
		fmt.Printf("placement: %d gpu / %d cpu / %d nvme buckets\n",
			tel.Tiers[0].Buckets, tel.Tiers[1].Buckets, tel.Tiers[2].Buckets)
		fmt.Printf("superchip step: %.3f ms pipelined vs %.3f ms serialized (overlap hides %.0f%%)\n",
			1e3*tel.PipelinedSeconds/n, 1e3*tel.SerializedSeconds/n, 100*tel.HiddenFraction())
	}
	if tel, ok := eng.ActTelemetry(); ok && tel.Passes > 0 {
		n := float64(tel.Passes)
		fmt.Printf("activation tier: %.1f spills/pass (%.1f MB), %.1f fetches/pass (%.1f MB)\n",
			float64(tel.Spills)/n, float64(tel.BytesSpilled)/1e6/n,
			float64(tel.Fetches)/n, float64(tel.BytesFetched)/1e6/n)
		fmt.Printf("activation step: %.3f ms pipelined vs %.3f ms serialized (prefetch overlap hides %.0f%%)\n",
			1e3*tel.PipelinedSeconds()/n, 1e3*tel.SerializedSeconds()/n,
			100*(1-tel.PipelinedSeconds()/tel.SerializedSeconds()))
	}
	return nil
}

// writeTrace exports the tracer's events as a Chrome trace-event JSON
// file.
func writeTrace(tracer *superoffload.Tracer, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace file: %w", err)
	}
	if err := tracer.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing trace: %w", err)
	}
	return nil
}

// buildReport assembles the machine-readable run summary (split from
// emitJSON so tests can lock the marshaled shape).
func buildReport(eng engine, reg *superoffload.MetricsRegistry, params int, mode, parallelism string, steps int, finalLoss float64) jsonReport {
	rep := jsonReport{
		Params:      params,
		Buckets:     eng.NumBuckets(),
		Mode:        mode,
		Parallelism: parallelism,
		Steps:       steps,
		FinalLoss:   finalLoss,
		Stats:       eng.Stats(),
	}
	if cse, ok := eng.(commStatser); ok {
		cs := cse.CommStats()
		rep.Comm = &cs
	}
	if tel, ok := eng.StoreTelemetry(); ok {
		rep.Store = &tel
	}
	if tel, ok := eng.PlacementTelemetry(); ok {
		rep.Placement = &tel
	}
	if tel, ok := eng.ActTelemetry(); ok {
		rep.Act = &tel
	}
	if reg != nil {
		samples := reg.Gather()
		rep.MetricsV1 = make(map[string]float64, len(samples))
		for _, s := range samples {
			rep.MetricsV1[s.Name] = s.Value
		}
	}
	return rep
}

// emitJSON writes the machine-readable run summary to stdout.
func emitJSON(eng engine, reg *superoffload.MetricsRegistry, params int, mode, parallelism string, steps int, finalLoss float64) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(buildReport(eng, reg, params, mode, parallelism, steps, finalLoss))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
