// Command superplan sizes a training workload on modeled GH200 hardware:
// it reports the SuperOffload plan (policy, buckets, casting, execution)
// and compares predicted throughput against every baseline system. With
// -emit-placement it also prints the §4.3 adaptive weight-update
// placement (the GPU-retained bucket tail) in the form the real engine's
// supertrain command consumes.
//
// Usage:
//
//	superplan -model 13B -chips 8 -batch 32 -seq 1024
//	superplan -model 5B -emit-placement
//	superplan -models
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"superoffload"
)

func main() {
	modelName := flag.String("model", "5B", "Appendix A model label (see -models)")
	chips := flag.Int("chips", 1, "Superchip count")
	batch := flag.Int("batch", 0, "global batch size (0: the 8-per-chip default)")
	seq := flag.Int("seq", 1024, "sequence length")
	listModels := flag.Bool("models", false, "list the model zoo")
	emitPlacement := flag.Bool("emit-placement", false, "print the adaptive GPU/CPU bucket placement for the real engine")
	flag.Parse()

	if *listModels {
		fmt.Println("model zoo (Appendix A):", strings.Join(superoffload.ModelNames(), " "))
		return
	}
	validate(*modelName, *chips, *batch, *seq)

	req := superoffload.PlanRequest{Model: *modelName, Chips: *chips, GlobalBatch: *batch, Seq: *seq}
	results, err := superoffload.Compare(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s on %d GH200, global batch %d, seq %d\n",
		*modelName, *chips, effBatch(*batch, *chips), *seq)
	if d, err := superoffload.Describe(req); err == nil {
		fmt.Printf("SuperOffload plan: %s, %s, %d buckets x %d MB (streaming efficiency %.0f%%)\n",
			d.Policy, d.CastPath, d.NBuckets, d.BucketMB, 100*d.Efficiency)
		if d.ActSpill {
			fmt.Printf("activation tier: spill to %d resident layers (-act-offload; co-planned with the optimizer placement under one HBM budget)\n",
				d.ActResidentLayers)
		} else {
			fmt.Printf("activation tier: not needed (all layers resident next to the optimizer placement)\n")
		}
	}
	if *emitPlacement {
		p, err := superoffload.DescribePlacement(req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("placement: GPU-retained tail %d of %d buckets = %.1f%% (%s)\n",
			p.GPUBuckets, p.NBuckets, 100*float64(p.GPUBuckets)/float64(p.NBuckets), p.Plan)
		fmt.Printf("real engine: supertrain %s (absolute tail, clamped to the engine's bucket count;\n"+
			"             scale by the %.1f%% fraction for a different partition, or drop -gpu-buckets to re-derive)\n",
			p.Flags, 100*float64(p.GPUBuckets)/float64(p.NBuckets))
	}
	fmt.Println()
	fmt.Printf("%-15s %-8s %-10s %-7s %-9s %-22s\n", "system", "fits", "TFLOPS/GPU", "MFU", "GPU idle", "execution")
	for _, r := range results {
		if !r.Fits {
			fmt.Printf("%-15s OOM      %s\n", r.System, r.OOMReason)
			continue
		}
		exec := fmt.Sprintf("micro=%d accum=%d", r.MicroBatch, r.GradAccum)
		if r.Checkpoint {
			exec += " +ckpt"
		}
		fmt.Printf("%-15s yes      %-10.1f %-7.3f %-9.2f %-22s\n",
			r.System, r.TFLOPS, r.MFU, r.GPUIdleFrac, exec)
	}
}

// validate rejects bad flag values with a usage message before anything
// reaches the planner (the same hardening supertrain applies): counts
// must be positive, and an unknown -model lists the zoo instead of
// surfacing a deep planner error.
func validate(model string, chips, batch, seq int) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(flag.CommandLine.Output(), "superplan: %s\n\n", fmt.Sprintf(format, args...))
		flag.Usage()
		os.Exit(2)
	}
	if chips < 1 {
		fail("-chips must be >= 1, got %d", chips)
	}
	if batch < 0 {
		fail("-batch must be positive (or 0 for the 8-per-chip default), got %d", batch)
	}
	if seq < 1 {
		fail("-seq must be >= 1, got %d", seq)
	}
	names := superoffload.ModelNames()
	for _, n := range names {
		if n == model {
			return
		}
	}
	fail("unknown -model %q (model zoo: %s)", model, strings.Join(names, " "))
}

func effBatch(b, chips int) int {
	if b >= 1 {
		return b
	}
	return 8 * chips
}
