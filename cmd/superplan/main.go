// Command superplan sizes a training workload on modeled GH200 hardware:
// it reports the SuperOffload plan (policy, buckets, casting, execution)
// and compares predicted throughput against every baseline system.
//
// Usage:
//
//	superplan -model 13B -chips 8 -batch 32 -seq 1024
//	superplan -models
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"superoffload"
)

func main() {
	modelName := flag.String("model", "5B", "Appendix A model label")
	chips := flag.Int("chips", 1, "Superchip count")
	batch := flag.Int("batch", 0, "global batch size (default 8 per chip)")
	seq := flag.Int("seq", 1024, "sequence length")
	listModels := flag.Bool("models", false, "list the model zoo")
	flag.Parse()

	if *listModels {
		fmt.Println("model zoo (Appendix A):", strings.Join(superoffload.ModelNames(), " "))
		return
	}

	req := superoffload.PlanRequest{Model: *modelName, Chips: *chips, GlobalBatch: *batch, Seq: *seq}
	results, err := superoffload.Compare(req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s on %d GH200, global batch %d, seq %d\n",
		*modelName, *chips, effBatch(*batch, *chips), *seq)
	if d, err := superoffload.Describe(req); err == nil {
		fmt.Printf("SuperOffload plan: %s, %s, %d buckets x %d MB (streaming efficiency %.0f%%)\n\n",
			d.Policy, d.CastPath, d.NBuckets, d.BucketMB, 100*d.Efficiency)
	} else {
		fmt.Println()
	}
	fmt.Printf("%-15s %-8s %-10s %-7s %-9s %-22s\n", "system", "fits", "TFLOPS/GPU", "MFU", "GPU idle", "execution")
	for _, r := range results {
		if !r.Fits {
			fmt.Printf("%-15s OOM      %s\n", r.System, r.OOMReason)
			continue
		}
		exec := fmt.Sprintf("micro=%d accum=%d", r.MicroBatch, r.GradAccum)
		if r.Checkpoint {
			exec += " +ckpt"
		}
		fmt.Printf("%-15s yes      %-10.1f %-7.3f %-9.2f %-22s\n",
			r.System, r.TFLOPS, r.MFU, r.GPUIdleFrac, exec)
	}
}

func effBatch(b, chips int) int {
	if b >= 1 {
		return b
	}
	return 8 * chips
}
