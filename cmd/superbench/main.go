// Command superbench regenerates the paper's tables and figures from the
// systems in this repository.
//
// Usage:
//
//	superbench -list
//	superbench -exp fig10
//	superbench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"superoffload/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (e.g. fig10, table2) or 'all'")
	list := flag.Bool("list", false, "list available experiments")
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, n := range experiments.Names() {
			fmt.Println("  ", n)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun one with: superbench -exp <id>   (or -exp all)")
		}
		return
	}

	ids := []string{*exp}
	if strings.EqualFold(*exp, "all") {
		ids = experiments.Names()
	}
	for _, id := range ids {
		out, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "superbench:", err)
			os.Exit(1)
		}
		fmt.Println(out)
	}
}
