// Command benchdiff turns `go test -bench` output into a JSON artifact
// and gates CI on benchmark regressions: every benchmark named in a
// committed baseline must be present in the current run and may not be
// slower than threshold× its baseline ns/op.
//
// Usage (the CI bench job):
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | tee bench.txt
//	go run ./cmd/benchdiff -bench bench.txt -baseline BENCH_baseline.json -out BENCH_ci.json
//
// Regenerate the baseline after an intentional perf change:
//
//	go run ./cmd/benchdiff -bench bench.txt -write-baseline BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches e.g. "BenchmarkTrainStepSTV-8  1  9357906 ns/op".
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// Baseline is the committed regression gate: benchmark name (sans the
// "Benchmark" prefix and -procs suffix) → ns/op. Only the benchmarks
// listed here are gated; the artifact reports everything parsed.
type Baseline struct {
	// Threshold is the allowed slowdown ratio (e.g. 1.25 = +25%). The
	// baseline carries it so loosening the gate is a reviewed change.
	Threshold  float64            `json:"threshold"`
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// parseBench extracts ns/op per benchmark, keeping the minimum across
// duplicates (sub-benchmarks keep their full slash-path name).
func parseBench(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	return out, sc.Err()
}

func main() {
	benchPath := flag.String("bench", "", "benchmark output file (default stdin)")
	baselinePath := flag.String("baseline", "", "committed baseline JSON to gate against")
	outPath := flag.String("out", "", "write the parsed results as a JSON artifact")
	writeBaseline := flag.String("write-baseline", "", "write a fresh baseline JSON from the current run and exit")
	threshold := flag.Float64("threshold", 0, "override the baseline's slowdown gate (0: use the baseline's)")
	normalize := flag.String("normalize", "", "divide all ns/op by this benchmark's in both runs before gating (machine-speed-invariant comparison; the reference must be in the baseline)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *outPath != "" {
		if err := writeJSON(*outPath, map[string]any{"benchmarks": current}); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d results to %s\n", len(current), *outPath)
	}

	if *writeBaseline != "" {
		th := *threshold
		if th == 0 {
			th = 1.25
		}
		if err := writeJSON(*writeBaseline, Baseline{Threshold: th, Benchmarks: current}); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote baseline with %d benchmarks to %s\n", len(current), *writeBaseline)
		return
	}
	if *baselinePath == "" {
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baselinePath, err))
	}
	th := base.Threshold
	if *threshold != 0 {
		th = *threshold
	}
	if th <= 1 {
		fatal(fmt.Errorf("threshold must exceed 1.0, got %v", th))
	}
	// Normalization turns absolute ns/op into ratios against a reference
	// benchmark measured in the same run, so a committed baseline from
	// one machine gates runs on another: uniform machine-speed
	// differences cancel, relative regressions do not.
	curScale, baseScale := 1.0, 1.0
	if *normalize != "" {
		var ok bool
		if curScale, ok = current[*normalize]; !ok || curScale <= 0 {
			fatal(fmt.Errorf("normalize reference %q missing from the current run", *normalize))
		}
		if baseScale, ok = base.Benchmarks[*normalize]; !ok || baseScale <= 0 {
			fatal(fmt.Errorf("normalize reference %q missing from the baseline", *normalize))
		}
		fmt.Printf("benchdiff: normalizing by %s (current %.0f ns/op, baseline %.0f ns/op)\n",
			*normalize, curScale, baseScale)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failures := 0
	for _, name := range names {
		if name == *normalize {
			continue // the reference gates itself trivially
		}
		want := base.Benchmarks[name]
		got, ok := current[name]
		if !ok {
			fmt.Printf("FAIL %-28s missing from the current run (renamed or deleted?)\n", name)
			failures++
			continue
		}
		ratio := (got / curScale) / (want / baseScale)
		status := "ok  "
		if ratio > th {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %-28s %12.0f ns/op vs baseline %12.0f (%.2fx, gate %.2fx)\n",
			status, name, got, want, ratio, th)
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d benchmark(s) regressed past %.0f%% of baseline", failures, 100*(th-1)))
	}
	fmt.Printf("benchdiff: %d gated benchmarks within %.0f%% of baseline\n", len(names), 100*(th-1))
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
