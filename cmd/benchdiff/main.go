// Command benchdiff turns `go test -bench` output into a JSON artifact
// and gates CI on benchmark regressions: every benchmark named in a
// committed baseline must be present in the current run, may not be
// slower than threshold× its baseline ns/op, and (when the baseline
// carries allocation stats) may not allocate past its baseline B/op and
// allocs/op plus a small absolute slack.
//
// Usage (the CI bench job):
//
//	go test -bench=. -benchtime=1x -benchmem -run='^$' ./... | tee bench.txt
//	go run ./cmd/benchdiff -bench bench.txt -baseline BENCH_baseline.json -out BENCH_ci.json
//
// Regenerate the baseline after an intentional perf change:
//
//	go run ./cmd/benchdiff -bench bench.txt -write-baseline BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches e.g.
// "BenchmarkTrainStepSTV-8  1  9357906 ns/op  529435 B/op  226 allocs/op"
// (the B/op and allocs/op columns appear under -benchmem; custom-metric
// columns like MB/s may sit between ns/op and B/op).
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:.*?\s([0-9]+) B/op\s+([0-9]+) allocs/op)?`)

// Stats is one benchmark's gated measurements.
type Stats struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op"`
	AllocsOp float64 `json:"allocs_op"`

	hasMem bool // the run carried -benchmem columns for this benchmark
}

// Baseline is the committed regression gate: benchmark name (sans the
// "Benchmark" prefix and -procs suffix) → stats. Only the benchmarks
// listed here are gated; the artifact reports everything parsed.
type Baseline struct {
	// Threshold is the allowed slowdown ratio (e.g. 1.25 = +25%). The
	// baseline carries it so loosening the gate is a reviewed change.
	Threshold float64 `json:"threshold"`
	// MemStats records whether the baseline was written from a -benchmem
	// run; B/op and allocs/op are gated only when it was.
	MemStats   bool             `json:"mem_stats"`
	Benchmarks map[string]Stats `json:"benchmarks"`
}

// parseBench extracts per-benchmark stats, keeping the minimum across
// duplicates per column (sub-benchmarks keep their full slash-path name).
func parseBench(r io.Reader) (map[string]Stats, error) {
	out := map[string]Stats{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
		}
		st := Stats{NsOp: ns}
		if m[3] != "" {
			st.hasMem = true
			if st.BOp, err = strconv.ParseFloat(m[3], 64); err != nil {
				return nil, fmt.Errorf("bad B/op in %q: %w", sc.Text(), err)
			}
			if st.AllocsOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
			}
		}
		if prev, ok := out[m[1]]; ok {
			st.NsOp = min(st.NsOp, prev.NsOp)
			st.BOp = min(st.BOp, prev.BOp)
			st.AllocsOp = min(st.AllocsOp, prev.AllocsOp)
			st.hasMem = st.hasMem && prev.hasMem
		}
		out[m[1]] = st
	}
	return out, sc.Err()
}

func main() {
	benchPath := flag.String("bench", "", "benchmark output file (default stdin)")
	baselinePath := flag.String("baseline", "", "committed baseline JSON to gate against")
	outPath := flag.String("out", "", "write the parsed results as a JSON artifact")
	writeBaseline := flag.String("write-baseline", "", "write a fresh baseline JSON from the current run and exit")
	threshold := flag.Float64("threshold", 0, "override the baseline's slowdown gate (0: use the baseline's)")
	allocSlack := flag.Float64("alloc-slack", 16, "absolute allocs/op headroom on top of the ratio gate (covers worker-pool submissions on multicore runners)")
	byteSlack := flag.Float64("byte-slack", 8192, "absolute B/op headroom on top of the ratio gate")
	normalize := flag.String("normalize", "", "divide all ns/op by this benchmark's in both runs before gating (machine-speed-invariant comparison; the reference must be in the baseline)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *benchPath != "" {
		f, err := os.Open(*benchPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	if *outPath != "" {
		if err := writeJSON(*outPath, map[string]any{"benchmarks": current}); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote %d results to %s\n", len(current), *outPath)
	}

	if *writeBaseline != "" {
		th := *threshold
		if th == 0 {
			th = 1.25
		}
		mem := true
		for _, st := range current {
			mem = mem && st.hasMem
		}
		if err := writeJSON(*writeBaseline, Baseline{Threshold: th, MemStats: mem, Benchmarks: current}); err != nil {
			fatal(err)
		}
		fmt.Printf("benchdiff: wrote baseline with %d benchmarks to %s (mem stats: %v)\n", len(current), *writeBaseline, mem)
		return
	}
	if *baselinePath == "" {
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *baselinePath, err))
	}
	th := base.Threshold
	if *threshold != 0 {
		th = *threshold
	}
	if th <= 1 {
		fatal(fmt.Errorf("threshold must exceed 1.0, got %v", th))
	}
	// Normalization turns absolute ns/op into ratios against a reference
	// benchmark measured in the same run, so a committed baseline from
	// one machine gates runs on another: uniform machine-speed
	// differences cancel, relative regressions do not. Allocation stats
	// are machine-independent, so they gate unnormalized.
	curScale, baseScale := 1.0, 1.0
	if *normalize != "" {
		cur, ok := current[*normalize]
		if !ok || cur.NsOp <= 0 {
			fatal(fmt.Errorf("normalize reference %q missing from the current run", *normalize))
		}
		ref, ok := base.Benchmarks[*normalize]
		if !ok || ref.NsOp <= 0 {
			fatal(fmt.Errorf("normalize reference %q missing from the baseline", *normalize))
		}
		curScale, baseScale = cur.NsOp, ref.NsOp
		fmt.Printf("benchdiff: normalizing by %s (current %.0f ns/op, baseline %.0f ns/op)\n",
			*normalize, curScale, baseScale)
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failures := 0
	for _, name := range names {
		if name == *normalize {
			continue // the reference gates itself trivially
		}
		want := base.Benchmarks[name]
		got, ok := current[name]
		if !ok {
			fmt.Printf("FAIL %-28s missing from the current run (renamed or deleted?)\n", name)
			failures++
			continue
		}
		ratio := (got.NsOp / curScale) / (want.NsOp / baseScale)
		status := "ok  "
		if ratio > th {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%s %-28s %12.0f ns/op vs baseline %12.0f (%.2fx, gate %.2fx)\n",
			status, name, got.NsOp, want.NsOp, ratio, th)
		if !base.MemStats || !got.hasMem {
			continue
		}
		if limit := want.AllocsOp*th + *allocSlack; got.AllocsOp > limit {
			fmt.Printf("FAIL %-28s %12.0f allocs/op vs baseline %12.0f (limit %.0f)\n",
				name, got.AllocsOp, want.AllocsOp, limit)
			failures++
		}
		if limit := want.BOp*th + *byteSlack; got.BOp > limit {
			fmt.Printf("FAIL %-28s %12.0f B/op vs baseline %12.0f (limit %.0f)\n",
				name, got.BOp, want.BOp, limit)
			failures++
		}
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d benchmark gate(s) failed (threshold %.0f%%)", failures, 100*(th-1)))
	}
	fmt.Printf("benchdiff: %d gated benchmarks within %.0f%% of baseline\n", len(names), 100*(th-1))
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
