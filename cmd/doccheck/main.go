// Command doccheck is the docs-consistency gate CI runs alongside the
// linters. It fails (exit 1) when the documentation has drifted from the
// code in either of two ways:
//
//  1. CLI surface: every flag cmd/supertrain registers must be mentioned
//     in README.md (as "-name"), so a new training knob cannot ship
//     undocumented.
//  2. Godoc surface: every exported identifier in the audited packages
//     (the root facade, internal/act, internal/dp, internal/stv,
//     internal/place) must
//     carry a doc comment, and each audited package must have a package
//     comment — the ST1000/ST1020/ST1021-class checks, enforced without
//     needing staticcheck installed locally.
//  3. Experiment surface: every experiment id registered in
//     internal/experiments/registry.go must have a row in EXPERIMENTS.md
//     (as `id`), so the registry and its documentation cannot drift.
//  4. Example surface: every examples/<dir> program must be mentioned in
//     README.md (as examples/<dir>), so a new example cannot ship
//     outside the examples table.
//
// Run from the repository root: go run ./cmd/doccheck
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// auditedPackages are the directories whose exported identifiers must
// all carry doc comments (the facade and the engine/store layers the
// documentation overhaul covers).
var auditedPackages = []string{".", "internal/act", "internal/dp", "internal/stv", "internal/place", "internal/obs"}

func main() {
	var problems []string
	problems = append(problems, checkFlags()...)
	problems = append(problems, checkExperiments()...)
	problems = append(problems, checkExamples()...)
	for _, dir := range auditedPackages {
		problems = append(problems, checkDocs(dir)...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "doccheck:", p)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// checkFlags extracts every flag name cmd/supertrain registers and
// verifies README.md mentions it as "-name".
func checkFlags() []string {
	const src = "cmd/supertrain/main.go"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, src, nil, 0)
	if err != nil {
		return []string{fmt.Sprintf("parsing %s: %v", src, err)}
	}
	var names []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "flag" {
			return true
		}
		switch sel.Sel.Name {
		case "Bool", "Duration", "Float64", "Int", "Int64", "String", "Uint", "Uint64":
		default:
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err == nil {
			names = append(names, name)
		}
		return true
	})
	if len(names) == 0 {
		return []string{fmt.Sprintf("no flag registrations found in %s (parser drift?)", src)}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		return []string{fmt.Sprintf("reading README.md: %v", err)}
	}
	var out []string
	for _, n := range names {
		// Whole-token match: "-ranks" must not be satisfied by the
		// "-ranks" inside "-seq-ranks", nor "-offload" by
		// "-offload-dir", so the flag name may not be followed by
		// another name character.
		token := regexp.MustCompile(`-` + regexp.QuoteMeta(n) + `([^a-z0-9-]|$)`)
		if !token.Match(readme) {
			out = append(out, fmt.Sprintf("supertrain flag -%s is not documented in README.md", n))
		}
	}
	return out
}

// checkExperiments extracts every experiment id registered in the
// experiments registry map and verifies EXPERIMENTS.md documents it as a
// `id` row — the registry ↔ docs drift gate.
func checkExperiments() []string {
	const src = "internal/experiments/registry.go"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, src, nil, 0)
	if err != nil {
		return []string{fmt.Sprintf("parsing %s: %v", src, err)}
	}
	var ids []string
	ast.Inspect(f, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok || len(vs.Names) == 0 || vs.Names[0].Name != "registry" {
			return true
		}
		for _, v := range vs.Values {
			lit, ok := v.(*ast.CompositeLit)
			if !ok {
				continue
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.BasicLit)
				if !ok || key.Kind != token.STRING {
					continue
				}
				if id, err := strconv.Unquote(key.Value); err == nil {
					ids = append(ids, id)
				}
			}
		}
		return false
	})
	if len(ids) == 0 {
		return []string{fmt.Sprintf("no experiment registrations found in %s (parser drift?)", src)}
	}
	docs, err := os.ReadFile("EXPERIMENTS.md")
	if err != nil {
		return []string{fmt.Sprintf("reading EXPERIMENTS.md: %v", err)}
	}
	var out []string
	for _, id := range ids {
		if !strings.Contains(string(docs), "`"+id+"`") {
			out = append(out, fmt.Sprintf("experiment %q has no row in EXPERIMENTS.md", id))
		}
	}
	return out
}

// checkExamples lists every example program directory and verifies
// README.md mentions it as examples/<dir> — the examples ↔ docs drift
// gate.
func checkExamples() []string {
	entries, err := os.ReadDir("examples")
	if err != nil {
		return []string{fmt.Sprintf("reading examples/: %v", err)}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		return []string{fmt.Sprintf("reading README.md: %v", err)}
	}
	var out []string
	found := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		found++
		// Whole-token match, like checkFlags: examples/mesh must not be
		// satisfied by examples/mesh_nvme.
		token := regexp.MustCompile(`examples/` + regexp.QuoteMeta(e.Name()) + `([^a-z0-9_-]|$)`)
		if !token.Match(readme) {
			out = append(out, fmt.Sprintf("example examples/%s is not documented in README.md", e.Name()))
		}
	}
	if found == 0 {
		out = append(out, "no example directories found under examples/ (layout drift?)")
	}
	return out
}

// checkDocs verifies the package comment and per-identifier doc comments
// for one directory's non-test files.
func checkDocs(dir string) []string {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return []string{err.Error()}
	}
	var out []string
	fset := token.NewFileSet()
	pkgDoc := false
	parsed := 0
	for _, path := range matches {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			out = append(out, fmt.Sprintf("parsing %s: %v", path, err))
			continue
		}
		parsed++
		if f.Doc != nil {
			pkgDoc = true
		}
		out = append(out, checkFileDocs(fset, path, f)...)
	}
	if parsed > 0 && !pkgDoc {
		out = append(out, fmt.Sprintf("package in %s has no package comment (ST1000)", dir))
	}
	return out
}

// checkFileDocs walks one file's top-level declarations and reports
// exported identifiers without doc comments.
func checkFileDocs(fset *token.FileSet, path string, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		out = append(out, fmt.Sprintf("%s: exported %s %s has no doc comment",
			fset.Position(pos), kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue // method on an unexported type: not public API
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			report(d.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc on the grouped decl covers its specs
					// (idiomatic const/var blocks); otherwise each
					// exported spec needs its own doc or line comment.
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), "value", n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// exportedReceiver reports whether a method's receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}
