package superoffload

// Observability facade: re-exports the internal/obs tracing and metrics
// layer and wires whichever engine an InitX built into one registry.
// The flow is always the same three steps — NewTracer into
// OptimizerConfig.Tracer, RegisterMetrics(reg, engine), and either
// Tracer.WriteJSON for a Chrome trace file or ObsHandler on an HTTP
// listener for live /metrics + /trace polling (see examples/tracing).

import (
	"net/http"

	"superoffload/internal/obs"
)

// Tracer records per-op schedule spans, store IO events, and collective
// instants across every engine, for export as Chrome trace-event JSON;
// see obs.Tracer. A nil Tracer in OptimizerConfig disables tracing at
// zero cost.
type Tracer = obs.Tracer

// NewTracer starts an enabled tracer; its clock zero is now.
func NewTracer() *Tracer { return obs.NewTracer() }

// MetricsRegistry collects counters, gauges, and telemetry providers
// for the /metrics endpoint and Gather snapshots; see obs.Registry.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricSample is one gathered metric reading; see obs.Sample.
type MetricSample = obs.Sample

// MetricSource is the interface every telemetry snapshot implements to
// publish into a MetricsRegistry; see obs.Source.
type MetricSource = obs.Source

// ObsHandler serves the observability endpoints over HTTP: /metrics
// (text-format registry snapshot), /trace (Chrome trace JSON; ?follow=1
// streams), and /debug/pprof. Either argument may be nil; the
// corresponding endpoint degrades gracefully.
func ObsHandler(reg *MetricsRegistry, tr *Tracer) http.Handler {
	return obs.Handler(reg, tr)
}

// statsSource, telemetrySource, placementSource, actSource, and
// commSource are the telemetry surfaces RegisterMetrics probes for —
// every engine implements a subset.
type statsSource interface{ Stats() Stats }
type telemetrySource interface {
	StoreTelemetry() (StoreTelemetry, bool)
}
type placementSource interface {
	PlacementTelemetry() (PlacementTelemetry, bool)
}
type actSource interface {
	ActTelemetry() (ActTelemetry, bool)
}
type commSource interface{ CommStats() SPCommStats }

// RegisterMetrics registers live telemetry providers for an engine
// (any Engine/DPEngine/SPEngine/MeshEngine/PipeEngine value) on the
// registry: validation stats, NVMe store accounting, placement clocks,
// activation tier traffic, and link traffic — whichever surfaces the
// engine exposes. Each Gather re-reads the engine, so the registry
// serves mid-run values; every read path is lock-protected engine-side,
// making polling safe during training. Registering the same engine
// twice double-counts: Gather sums same-named samples.
func RegisterMetrics(reg *MetricsRegistry, engine any) {
	if s, ok := engine.(statsSource); ok {
		reg.Register(func() (MetricSource, bool) { return s.Stats(), true })
	}
	if s, ok := engine.(telemetrySource); ok {
		reg.Register(func() (MetricSource, bool) {
			t, ok := s.StoreTelemetry()
			return t, ok
		})
	}
	if s, ok := engine.(placementSource); ok {
		reg.Register(func() (MetricSource, bool) {
			t, ok := s.PlacementTelemetry()
			return t, ok
		})
	}
	if s, ok := engine.(actSource); ok {
		reg.Register(func() (MetricSource, bool) {
			t, ok := s.ActTelemetry()
			return t, ok
		})
	}
	if s, ok := engine.(commSource); ok {
		reg.Register(func() (MetricSource, bool) { return s.CommStats(), true })
	}
}
